//! The general (point-to-point) CONGEST runner: per round, a node may send a
//! *different* `O(log n)`-bit message over each incident edge (§1.1.1).
//!
//! The broadcast-based work in this repository flows through
//! [`run_bcongest`](crate::run_bcongest); this runner completes the model for
//! algorithms that genuinely need per-neighbor messages (e.g. routing-table
//! protocols), and is used by tests as an independent cross-check of the
//! accounting.

use crate::error::EngineError;
use crate::exec;
use crate::faults::{FaultEvent, FaultResponse, FaultState};
use crate::metrics::Metrics;
use crate::plane::RoundPlane;
use crate::shard;
use crate::view::LocalView;
use crate::wire::{Wire, WireDecode};
use congest_graph::{rng, EdgeId, Graph, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};

/// A CONGEST algorithm as a pure per-node state machine with per-edge sends.
///
/// Mirrors [`crate::BcongestAlgorithm`]'s contract: [`sends`](Self::sends) is pure;
/// [`on_sent`](Self::on_sent) is the post-send mutation point; [`receive`](Self::receive)
/// fires only on non-empty inboxes; [`next_activity`](Self::next_activity) drives
/// idle-round skipping.
pub trait CongestAlgorithm {
    /// Per-node state.
    type State: Clone + std::fmt::Debug;
    /// Message type; at most one per edge per round, one word each. The
    /// [`WireDecode`] bound gives every message a fixed-width packed codec so
    /// any algorithm can run on either message plane.
    type Msg: WireDecode;
    /// Per-node output.
    type Output: Clone + std::fmt::Debug + PartialEq;

    /// Algorithm name for diagnostics.
    fn name(&self) -> &'static str;
    /// Initial state.
    fn init(&self, view: &LocalView<'_>) -> Self::State;
    /// Messages to send this round: `(neighbor, msg)` pairs, at most one per
    /// neighbor. Pure.
    fn sends(&self, state: &Self::State, round: usize) -> Vec<(NodeId, Self::Msg)>;
    /// Called once after this round's sends were collected.
    fn on_sent(&self, state: &mut Self::State, round: usize);
    /// Delivers this round's inbox (non-empty).
    fn receive(&self, state: &mut Self::State, round: usize, msgs: &[(NodeId, Self::Msg)]);
    /// Whether the node is finished.
    fn is_done(&self, state: &Self::State) -> bool;
    /// Final output.
    fn output(&self, state: &Self::State) -> Self::Output;
    /// Earliest future activity absent input (idle skipping).
    fn next_activity(&self, state: &Self::State, after: usize) -> Option<usize> {
        if self.is_done(state) {
            None
        } else {
            Some(after)
        }
    }
    /// Round guard bound.
    fn round_bound(&self, n: usize, m: usize) -> usize;
    /// Fault-response hook for [`crate::FaultResponse::SelfHeal`] plans:
    /// called on every live node at the start of a fault round (recovered
    /// nodes are re-initialized instead). Default: no-op.
    fn on_fault(&self, _state: &mut Self::State, _round: usize) {}
}

/// Result of a CONGEST execution.
#[derive(Clone, Debug)]
pub struct CongestRun<O> {
    /// Per-node outputs.
    pub outputs: Vec<O>,
    /// Rounds/messages/congestion.
    pub metrics: Metrics,
}

/// Runs a point-to-point CONGEST algorithm.
///
/// # Errors
///
/// [`EngineError::RoundLimitExceeded`] if the algorithm does not quiesce in time;
/// [`EngineError::InvalidPath`] never occurs (sends to non-neighbors panic in debug
/// builds and are dropped in release builds).
pub fn run_congest<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &crate::RunOptions,
) -> Result<CongestRun<A::Output>, EngineError>
where
    A: CongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    run_congest_inner(algo, g, weights, opts, None)
}

/// Like [`run_congest`], but invokes `observe(node, round, inbox)` for every
/// non-empty inbox — the CONGEST counterpart of
/// [`crate::run_bcongest_observed`], used by the trace recorder. Observers see
/// inboxes in node order: the receive phase runs sequentially when one is
/// attached (the other phases still honor `opts.exec`).
pub fn run_congest_observed<A, F>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &crate::RunOptions,
    mut observe: F,
) -> Result<CongestRun<A::Output>, EngineError>
where
    A: CongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    F: FnMut(NodeId, usize, &[(NodeId, A::Msg)]),
{
    run_congest_inner(algo, g, weights, opts, Some(&mut observe))
}

/// The round loop behind both entry points; mirrors `run_bcongest_inner`
/// phase for phase (including fault application — see [`crate::faults`]).
#[allow(clippy::type_complexity)]
fn run_congest_inner<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &crate::RunOptions,
    mut observer: Option<&mut dyn FnMut(NodeId, usize, &[(NodeId, A::Msg)])>,
) -> Result<CongestRun<A::Output>, EngineError>
where
    A: CongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let n = g.n();
    let cfg = &opts.exec;
    let mut metrics = Metrics::new(g.m());
    let init_node = |i: usize| {
        let view = LocalView::new(g, weights, NodeId::new(i), rng::node_seed(opts.seed, i));
        algo.init(&view)
    };
    let mut states: Vec<A::State> =
        exec::map_ranges(cfg, n, |range| range.map(init_node).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect();

    if let Some(plan) = &opts.faults {
        if let Err(e) = plan.validate(g) {
            panic!("invalid FaultPlan: {e}");
        }
    }
    let mut fault_rt: Option<FaultState<'_>> =
        opts.faults.as_ref().map(|plan| FaultState::new(plan, g));

    let base_limit = 4 * algo.round_bound(n, g.m()) + 64;
    let limit = opts.max_rounds.unwrap_or_else(|| match &opts.faults {
        Some(plan) => {
            (plan.fault_rounds().len() + 1) * base_limit + plan.last_fault_round().unwrap_or(0)
        }
        None => base_limit,
    });

    let mut plane: RoundPlane<A::Msg> = RoundPlane::new(cfg, n);
    // One chooser per Auto run (mirrors the BCONGEST runner): per-round
    // backend resolution from measured volume only, never the thread count.
    let mut chooser = (cfg.backend == exec::DeliveryBackend::Auto)
        .then(|| exec::BackendChooser::new(exec::AutoCostModel::calibrated(), n));
    let mut round = 0usize;
    let mut rounds_used = 0u64;
    loop {
        if round > limit {
            return Err(EngineError::RoundLimitExceeded {
                algorithm: algo.name(),
                limit,
            });
        }
        // 0. Fault events due this round, then the response policy (mirrors
        //    the BCONGEST runner exactly).
        if let Some(fs) = fault_rt.as_mut() {
            let fired = fs.apply_due(round);
            if !fired.is_empty() {
                match fs.response() {
                    FaultResponse::Restart => {
                        for (i, st) in states.iter_mut().enumerate() {
                            if fs.mask.node_up[i] {
                                *st = init_node(i);
                            }
                        }
                    }
                    FaultResponse::SelfHeal => {
                        for ev in &fired {
                            if let FaultEvent::Recover(v) = ev {
                                states[v.index()] = init_node(v.index());
                            }
                        }
                        for (i, st) in states.iter_mut().enumerate() {
                            if fs.mask.node_up[i] {
                                algo.on_fault(st, round);
                            }
                        }
                    }
                }
            }
        }
        type SendBatch<M> = Vec<(NodeId, M)>;
        // Pure per-node send scans, chunked over nodes; concatenating the
        // per-chunk batches in chunk order reproduces the sequential order.
        // Crashed nodes send nothing.
        let all_sends: Vec<(NodeId, SendBatch<A::Msg>)> =
            shard::collect_sends(cfg, &states, |i, st| {
                if let Some(fs) = &fault_rt {
                    if !fs.mask.node_up[i] {
                        return None;
                    }
                }
                let sends = algo.sends(st, round);
                (!sends.is_empty()).then_some(sends)
            });
        let any_sent = !all_sends.is_empty();
        for (v, _) in &all_sends {
            algo.on_sent(&mut states[v.index()], round);
        }
        // Auto backend: resolve this round's delivery backend from its
        // pre-fault message volume (Σ send-batch lengths) and log it.
        let round_cfg = chooser.as_mut().map(|ch| {
            let volume: u64 = all_sends.iter().map(|(_, b)| b.len() as u64).sum();
            let chosen = ch.choose(volume);
            metrics.record_backend_decision(exec::BackendDecision {
                round: round as u64,
                volume,
                backend: chosen,
            });
            cfg.clone().with_backend(chosen)
        });
        let deliver_cfg = round_cfg.as_ref().unwrap_or(cfg);
        // Edge resolution and delivery through the configured backend (the
        // `edge_between` lookups are the hot part of the expansion): inline
        // pushes, chunk-order-merged outboxes, or sharded mailboxes with
        // batched cross-shard queues — inbox order is sender order either way.
        // Messages over down edges or to crashed receivers drop here, at the
        // single expansion point both planes share.
        let dropped = AtomicU64::new(0);
        let fault_mask = fault_rt.as_ref().map(|fs| &fs.mask);
        let expand = |v: NodeId,
                      sends: &Vec<(NodeId, A::Msg)>,
                      sink: &mut dyn FnMut(NodeId, EdgeId, A::Msg)| {
            let mut used: Vec<EdgeId> = Vec::with_capacity(sends.len());
            for (u, m) in sends {
                let e = g
                    .edge_between(v, *u)
                    .unwrap_or_else(|| panic!("{v:?} sent to non-neighbor {u:?}"));
                debug_assert!(!used.contains(&e), "two messages on one edge in one round");
                used.push(e);
                debug_assert_eq!(m.words(), 1, "CONGEST messages are single words");
                if let Some(mask) = fault_mask {
                    if !mask.edge_up[e.index()] || !mask.node_up[u.index()] {
                        dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                sink(*u, e, m.clone());
            }
        };
        plane.deliver(deliver_cfg, &all_sends, &expand, &mut metrics);
        metrics.dropped_messages += dropped.load(Ordering::Relaxed);
        // Per-node receive transitions, sharded with their inboxes. With an
        // observer attached the phase stays sequential so the callback sees
        // inboxes in node order.
        let any_received = if let Some(obs) = observer.as_mut() {
            plane.receive_each_seq(&mut states, |i, st, inbox| {
                obs(NodeId::new(i), round, inbox);
                algo.receive(st, round, inbox);
            })
        } else {
            plane.receive(cfg, &mut states, |st, inbox| {
                algo.receive(st, round, inbox);
            })
        };
        if any_sent || any_received {
            rounds_used = round as u64 + 1;
            round += 1;
            continue;
        }
        let next_alg = if let Some(fs) = &fault_rt {
            states
                .iter()
                .enumerate()
                .filter(|&(i, _)| fs.mask.node_up[i])
                .filter_map(|(_, st)| algo.next_activity(st, round + 1))
                .min()
        } else {
            exec::min_chunks(cfg, &states, |st| algo.next_activity(st, round + 1))
        };
        let next_fault = fault_rt
            .as_ref()
            .and_then(|fs| fs.next_fault_round())
            .map(|r| r.max(round + 1));
        let next = match (next_alg, next_fault) {
            (Some(a), Some(f)) => Some(a.min(f)),
            (a, None) => a,
            (None, f) => f,
        };
        match next {
            Some(r) => round = r,
            None => break,
        }
    }
    metrics.rounds = rounds_used;
    let outputs = states.iter().map(|s| algo.output(s)).collect();
    Ok(CongestRun { outputs, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    /// Point-to-point echo: node 0 sends a token around a cycle (each node forwards
    /// to its successor only — impossible to express as a broadcast without waste).
    struct RingToken {
        laps: u32,
    }

    #[derive(Clone, Debug)]
    struct TokenState {
        me: u32,
        n: u32,
        holding: bool,
        count: u32,
        target: u32,
        pending: bool,
    }

    impl CongestAlgorithm for RingToken {
        type State = TokenState;
        type Msg = u32; // lap counter
        type Output = u32;

        fn name(&self) -> &'static str {
            "ring-token"
        }
        fn init(&self, view: &LocalView<'_>) -> TokenState {
            TokenState {
                me: view.node().raw(),
                n: view.n() as u32,
                holding: view.node().raw() == 0,
                count: 0,
                target: self.laps,
                pending: view.node().raw() == 0,
            }
        }
        fn sends(&self, s: &TokenState, _round: usize) -> Vec<(NodeId, u32)> {
            if s.pending && s.count < s.target {
                vec![(NodeId::from((s.me + 1) % s.n), s.count)]
            } else {
                Vec::new()
            }
        }
        fn on_sent(&self, s: &mut TokenState, _round: usize) {
            s.pending = false;
            s.holding = false;
        }
        fn receive(&self, s: &mut TokenState, _round: usize, msgs: &[(NodeId, u32)]) {
            for &(_, lap) in msgs {
                s.holding = true;
                s.count = lap + u32::from(s.me == 0);
                // The origin retires the token once all laps are complete.
                s.pending = s.count < s.target;
            }
        }
        fn is_done(&self, s: &TokenState) -> bool {
            !s.pending
        }
        fn output(&self, s: &TokenState) -> u32 {
            s.count
        }
        fn round_bound(&self, n: usize, _m: usize) -> usize {
            (self.laps as usize + 1) * n + 4
        }
    }

    #[test]
    fn token_circulates_exactly() {
        let g = generators::cycle(8);
        let run = run_congest(
            &RingToken { laps: 3 },
            &g,
            None,
            &crate::RunOptions::default(),
        )
        .expect("ring-token run");
        // 3 laps of 8 hops each.
        assert_eq!(run.metrics.messages, 24);
        assert_eq!(run.metrics.rounds, 24);
        // Each edge carried exactly 3 messages.
        assert!(run.metrics.congestion().iter().all(|&c| c == 3));
        assert_eq!(run.outputs[0], 3);
    }

    #[test]
    fn dropped_token_is_recovered_by_restart() {
        use crate::faults::{FaultEvent, FaultPlan, FaultResponse};

        let g = generators::cycle(6);
        // Edge 0-1 is down until round 2: the token dies on its first hop,
        // the ring goes quiet, and the restart at round 2 reruns the circuit.
        let e = g
            .edge_between(NodeId::new(0), NodeId::new(1))
            .expect("cycle edge");
        let plan = FaultPlan::new(FaultResponse::Restart)
            .at(0, FaultEvent::EdgeDown(e))
            .at(2, FaultEvent::EdgeUp(e));
        let run = run_congest(
            &RingToken { laps: 1 },
            &g,
            None,
            &crate::RunOptions {
                faults: Some(plan),
                ..Default::default()
            },
        )
        .expect("faulty ring run");
        assert_eq!(run.outputs[0], 1, "restarted token completes its lap");
        assert_eq!(run.metrics.dropped_messages, 1, "the first hop was lost");
        assert_eq!(run.metrics.messages, 6, "drops are not charged");
    }

    #[test]
    fn observer_reports_congest_inboxes_in_node_order() {
        let g = generators::cycle(5);
        let mut seen: Vec<(u32, usize)> = Vec::new();
        let run = run_congest_observed(
            &RingToken { laps: 1 },
            &g,
            None,
            &crate::RunOptions::default(),
            |v, r, inbox| {
                assert!(!inbox.is_empty());
                seen.push((v.raw(), r));
            },
        )
        .expect("observed ring run");
        assert_eq!(run.outputs[0], 1);
        // One delivery per hop, five hops.
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0], (1, 0), "first hop lands at node 1 in round 0");
    }

    #[test]
    fn round_guard() {
        struct Spinner;
        #[derive(Clone, Debug)]
        struct S;
        impl CongestAlgorithm for Spinner {
            type State = S;
            type Msg = u32;
            type Output = ();
            fn name(&self) -> &'static str {
                "spinner"
            }
            fn init(&self, _: &LocalView<'_>) -> S {
                S
            }
            fn sends(&self, _: &S, _: usize) -> Vec<(NodeId, u32)> {
                Vec::new()
            }
            fn on_sent(&self, _: &mut S, _: usize) {}
            fn receive(&self, _: &mut S, _: usize, _: &[(NodeId, u32)]) {}
            fn is_done(&self, _: &S) -> bool {
                false
            }
            fn output(&self, _: &S) {}
            fn next_activity(&self, _: &S, after: usize) -> Option<usize> {
                Some(after) // claims activity forever, never sends
            }
            fn round_bound(&self, _: usize, _: usize) -> usize {
                8
            }
        }
        let g = generators::path(3);
        let err = run_congest(&Spinner, &g, None, &crate::RunOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::RoundLimitExceeded { .. }));
    }
}
