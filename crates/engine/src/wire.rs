//! Message-size accounting.
//!
//! The CONGEST model allows `O(log n)` bits per edge per round. We account sizes in
//! *words*: one word = one `O(log n)`-bit message (a constant number of IDs/values).
//! A payload of `k` words costs `k` messages per edge it crosses — exactly the paper's
//! accounting in Lemmas 1.5/1.6 (`I_n / log n` messages for `I_n` bits of input) and in
//! the "Õ(1)-bit aggregate packets cost logarithmically many messages" remark of §3.

use std::fmt;

/// Types that can be sent as CONGEST messages, with an explicit size in words.
///
/// The default size is one word, which is correct for anything encodable as a constant
/// number of node IDs / integer values. Composite payloads override [`Wire::words`].
pub trait Wire: Clone + fmt::Debug + PartialEq {
    /// Size of this payload in `O(log n)`-bit words (i.e., in CONGEST messages).
    fn words(&self) -> usize {
        1
    }
}

impl Wire for u32 {}
impl Wire for u64 {}
impl Wire for i64 {}
impl Wire for usize {}
impl Wire for (u32, u32) {}
impl Wire for (u64, u64) {}
impl Wire for () {
    fn words(&self) -> usize {
        0
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(Wire::words).sum::<usize>().max(1)
    }
}

impl Wire for congest_graph::NodeId {}
impl Wire for congest_graph::EdgeId {}
impl Wire for congest_graph::ClusterId {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!((3u32, 4u32).words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn vec_sizes() {
        assert_eq!(vec![1u64, 2, 3].words(), 3);
        assert_eq!(Vec::<u64>::new().words(), 1); // even an empty payload costs a message
    }

    #[test]
    fn id_pairs_fit_in_a_word() {
        // A constant number of IDs fits in one O(log n)-bit message.
        assert_eq!((1u32, 2u32).words(), 1);
        assert_eq!((1u64, 2u64).words(), 1);
    }
}
