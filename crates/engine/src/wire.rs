//! Message-size accounting.
//!
//! The CONGEST model allows `O(log n)` bits per edge per round. We account sizes in
//! *words*: one word = one `O(log n)`-bit message (a constant number of IDs/values).
//! A payload of `k` words costs `k` messages per edge it crosses — exactly the paper's
//! accounting in Lemmas 1.5/1.6 (`I_n / log n` messages for `I_n` bits of input) and in
//! the "Õ(1)-bit aggregate packets cost logarithmically many messages" remark of §3.

use std::fmt;

/// Types that can be sent as CONGEST messages, with an explicit size in words.
///
/// The default size is one word, which is correct for anything encodable as a constant
/// number of node IDs / integer values. Composite payloads override [`Wire::words`].
pub trait Wire: Clone + fmt::Debug + PartialEq {
    /// Size of this payload in `O(log n)`-bit words (i.e., in CONGEST messages).
    fn words(&self) -> usize {
        1
    }
}

/// Fixed-width packed encoding into `u32` lanes, the wire format of the flat
/// message plane ([`crate::plane`]).
///
/// `LANES` is a per-type constant: every value of the type occupies exactly
/// `LANES` consecutive `u32` lanes in a round arena. This is what makes the
/// flat plane a struct-of-arrays with O(1) indexing — variable-width payloads
/// (`Vec<T>`, padding probes) stay on the boxed plane and implement only
/// [`Wire`].
///
/// The packed size is an *implementation* byte count; the model-level cost in
/// CONGEST words is still [`Wire::words`] and the two are accounted
/// independently (words in [`crate::Metrics::messages`], bytes in
/// [`crate::Metrics::payload_bytes`]).
pub trait WireEncode: Wire {
    /// Number of `u32` lanes a value of this type occupies. Must be exact:
    /// `encode` writes all of them, `decode` reads all of them.
    const LANES: usize;

    /// Write the value into `out`, which is exactly `Self::LANES` long.
    fn encode(&self, out: &mut [u32]);
}

/// Decoding half of the packed codec: reconstruct a value from its lanes.
///
/// `decode(lanes)` must be a left inverse of [`WireEncode::encode`] for every
/// value (round-trip identity — property-tested per message type). Decoding
/// lanes that no `encode` produced may panic: only runner-produced arenas are
/// ever decoded.
pub trait WireDecode: WireEncode {
    /// Reconstruct a value from exactly `Self::LANES` lanes.
    fn decode(lanes: &[u32]) -> Self;
}

macro_rules! codec_u32 {
    ($t:ty) => {
        impl WireEncode for $t {
            const LANES: usize = 1;
            fn encode(&self, out: &mut [u32]) {
                out[0] = self.raw();
            }
        }
        impl WireDecode for $t {
            fn decode(lanes: &[u32]) -> Self {
                Self::from(lanes[0])
            }
        }
    };
}

impl Wire for u32 {}
impl WireEncode for u32 {
    const LANES: usize = 1;
    fn encode(&self, out: &mut [u32]) {
        out[0] = *self;
    }
}
impl WireDecode for u32 {
    fn decode(lanes: &[u32]) -> Self {
        lanes[0]
    }
}

impl Wire for u64 {}
impl WireEncode for u64 {
    const LANES: usize = 2;
    fn encode(&self, out: &mut [u32]) {
        out[0] = *self as u32;
        out[1] = (*self >> 32) as u32;
    }
}
impl WireDecode for u64 {
    fn decode(lanes: &[u32]) -> Self {
        lanes[0] as u64 | (lanes[1] as u64) << 32
    }
}

impl Wire for i64 {}
impl WireEncode for i64 {
    const LANES: usize = 2;
    fn encode(&self, out: &mut [u32]) {
        (*self as u64).encode(out);
    }
}
impl WireDecode for i64 {
    fn decode(lanes: &[u32]) -> Self {
        u64::decode(lanes) as i64
    }
}

impl Wire for usize {}
impl WireEncode for usize {
    const LANES: usize = 2;
    fn encode(&self, out: &mut [u32]) {
        (*self as u64).encode(out);
    }
}
impl WireDecode for usize {
    fn decode(lanes: &[u32]) -> Self {
        u64::decode(lanes) as usize
    }
}

impl Wire for (u32, u32) {}
impl WireEncode for (u32, u32) {
    const LANES: usize = 2;
    fn encode(&self, out: &mut [u32]) {
        out[0] = self.0;
        out[1] = self.1;
    }
}
impl WireDecode for (u32, u32) {
    fn decode(lanes: &[u32]) -> Self {
        (lanes[0], lanes[1])
    }
}

impl Wire for (u64, u64) {}
impl WireEncode for (u64, u64) {
    const LANES: usize = 4;
    fn encode(&self, out: &mut [u32]) {
        self.0.encode(&mut out[..2]);
        self.1.encode(&mut out[2..]);
    }
}
impl WireDecode for (u64, u64) {
    fn decode(lanes: &[u32]) -> Self {
        (u64::decode(&lanes[..2]), u64::decode(&lanes[2..]))
    }
}

impl Wire for () {
    fn words(&self) -> usize {
        0
    }
}
impl WireEncode for () {
    const LANES: usize = 0;
    fn encode(&self, _out: &mut [u32]) {}
}
impl WireDecode for () {
    fn decode(_lanes: &[u32]) -> Self {}
}

impl<T: Wire> Wire for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(Wire::words).sum::<usize>().max(1)
    }
}

impl Wire for congest_graph::NodeId {}
codec_u32!(congest_graph::NodeId);
impl Wire for congest_graph::EdgeId {}
codec_u32!(congest_graph::EdgeId);
impl Wire for congest_graph::ClusterId {}
codec_u32!(congest_graph::ClusterId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!((3u32, 4u32).words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn vec_sizes() {
        assert_eq!(vec![1u64, 2, 3].words(), 3);
        assert_eq!(Vec::<u64>::new().words(), 1); // even an empty payload costs a message
    }

    #[test]
    fn id_pairs_fit_in_a_word() {
        // A constant number of IDs fits in one O(log n)-bit message.
        assert_eq!((1u32, 2u32).words(), 1);
        assert_eq!((1u64, 2u64).words(), 1);
    }

    fn roundtrip<T: WireDecode>(v: T) {
        let mut lanes = vec![0u32; T::LANES];
        v.encode(&mut lanes);
        assert_eq!(T::decode(&lanes), v);
    }

    #[test]
    fn primitive_codecs_roundtrip() {
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX - 7);
        roundtrip(-42i64);
        roundtrip(usize::MAX);
        roundtrip((7u32, u32::MAX));
        roundtrip((u64::MAX, 3u64));
        roundtrip(());
        roundtrip(congest_graph::NodeId::new(12345));
        roundtrip(congest_graph::EdgeId::new(0));
        roundtrip(congest_graph::ClusterId::new(9));
    }
}
