//! Engine error types.

use std::fmt;

/// Errors produced by the execution engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A run did not quiesce within its round limit — either the limit was too small or
    /// the algorithm diverged.
    RoundLimitExceeded {
        /// Name of the offending algorithm.
        algorithm: &'static str,
        /// The limit that was hit.
        limit: usize,
    },
    /// A routing task referenced a path that is not a walk in the graph.
    InvalidPath {
        /// Index of the offending task.
        task: usize,
    },
    /// A forest description was not actually a forest (cycle or non-edge parent link).
    InvalidForest {
        /// Explanation.
        reason: String,
    },
    /// An operation sent more messages than its per-call budget allowed.
    BudgetExceeded {
        /// Name of the budgeted operation (e.g. `"convergecast"`).
        op: &'static str,
        /// Messages the operation actually needed.
        used: u64,
        /// The budget it was given.
        budget: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { algorithm, limit } => {
                write!(
                    f,
                    "algorithm '{algorithm}' exceeded the round limit of {limit}"
                )
            }
            EngineError::InvalidPath { task } => {
                write!(
                    f,
                    "routing task {task} has a path that is not a walk in the graph"
                )
            }
            EngineError::InvalidForest { reason } => write!(f, "invalid forest: {reason}"),
            EngineError::BudgetExceeded { op, used, budget } => {
                write!(f, "{op} exceeded its message budget: {used} > {budget}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EngineError::RoundLimitExceeded {
            algorithm: "x",
            limit: 5,
        };
        assert!(e.to_string().contains("round limit"));
        assert!(EngineError::InvalidPath { task: 3 }
            .to_string()
            .contains("task 3"));
        assert!(EngineError::InvalidForest {
            reason: "cycle".into()
        }
        .to_string()
        .contains("cycle"));
        assert!(EngineError::BudgetExceeded {
            op: "upcast",
            used: 10,
            budget: 4
        }
        .to_string()
        .contains("10 > 4"));
    }
}
