//! Deterministic fault injection: seeded per-round schedules of edge churn
//! and node crash/recovery, with message-drop semantics.
//!
//! A [`FaultPlan`] is a sorted list of `(round, event)` pairs plus a
//! [`FaultResponse`] policy. The runners apply due events at the **start** of
//! each round, before sends are collected:
//!
//! * a crashed node sends nothing, receives nothing, and keeps its state
//!   frozen until it recovers (or forever);
//! * a message whose edge is down, or whose receiver is crashed, is silently
//!   dropped by the network — it is never delivered and never charged to
//!   [`crate::Metrics::messages`] or the congestion vector, but the drop
//!   count lands in [`crate::Metrics::dropped_messages`];
//! * on any fault round, [`FaultResponse::Restart`] re-initializes every live
//!   node from scratch, while [`FaultResponse::SelfHeal`] re-initializes only
//!   freshly recovered nodes and notifies every other live node through the
//!   algorithm's `on_fault` hook.
//!
//! Fault application, drop filtering and the response policy all run at the
//! same points under every [`crate::DeliveryBackend`] and
//! [`crate::MessagePlane`], so faulty runs stay byte-identical across the
//! whole executor matrix — `tests/fault_conformance.rs` pins this.

use congest_graph::{rng, EdgeId, Graph, NodeId};
use rand::seq::SliceRandom;
use std::fmt;

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The edge goes down: messages crossing it are dropped until it comes
    /// back up.
    EdgeDown(EdgeId),
    /// The edge comes back up.
    EdgeUp(EdgeId),
    /// The node crashes: it stops sending/receiving and its state freezes.
    Crash(NodeId),
    /// The node recovers: it is re-initialized and rejoins the protocol.
    Recover(NodeId),
}

/// How live nodes react when a fault round fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultResponse {
    /// Every live node is re-initialized from scratch on each fault round —
    /// the algorithm reruns on the post-fault topology. Correct for any
    /// algorithm; costs the completed progress.
    Restart,
    /// Only recovered nodes are re-initialized; every other live node gets
    /// the algorithm's `on_fault` hook (e.g. leader election re-arms its
    /// flood). Requires the algorithm to be self-stabilizing under the
    /// plan's fault pattern.
    SelfHeal,
}

/// A deterministic per-round fault schedule.
///
/// Built with [`FaultPlan::new`] + [`FaultPlan::at`], or seeded via
/// [`FaultPlan::edge_churn`] / [`FaultPlan::crashes`]. The schedule is kept
/// sorted by round (stable — same-round events apply in insertion order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(round, event)` pairs, sorted by round.
    pub schedule: Vec<(usize, FaultEvent)>,
    /// The response policy for live nodes.
    pub response: FaultResponse,
}

impl FaultPlan {
    /// An empty plan with the given response policy.
    pub fn new(response: FaultResponse) -> Self {
        Self {
            schedule: Vec::new(),
            response,
        }
    }

    /// Schedules `event` at the start of `round` (builder-style). Keeps the
    /// schedule sorted by round, inserting after existing same-round events.
    #[must_use]
    pub fn at(mut self, round: usize, event: FaultEvent) -> Self {
        let pos = self.schedule.partition_point(|&(r, _)| r <= round);
        self.schedule.insert(pos, (round, event));
        self
    }

    /// Seeded edge churn: `k` distinct edges (chosen by seeded shuffle) go
    /// down at `down_round` and come back up at `up_round`.
    ///
    /// # Panics
    ///
    /// Panics if `up_round <= down_round` or the graph has fewer than `k`
    /// edges.
    pub fn edge_churn(
        g: &Graph,
        k: usize,
        down_round: usize,
        up_round: usize,
        seed: u64,
        response: FaultResponse,
    ) -> Self {
        assert!(up_round > down_round, "edges must come up after going down");
        assert!(k <= g.m(), "cannot churn more edges than exist");
        let mut edges: Vec<EdgeId> = g.edges().map(|(e, _, _)| e).collect();
        let mut r = rng::seeded(rng::derive(seed, 0xfa17_0001));
        edges.shuffle(&mut r);
        let mut plan = Self::new(response);
        for &e in edges.iter().take(k) {
            plan = plan
                .at(down_round, FaultEvent::EdgeDown(e))
                .at(up_round, FaultEvent::EdgeUp(e));
        }
        plan
    }

    /// Seeded permanent crashes: `count` nodes (chosen by seeded shuffle,
    /// never from `protect`) crash at `round` and do not recover. The
    /// response is always [`FaultResponse::Restart`] — a crashed-for-good
    /// node cannot be healed around without restart semantics in general.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` unprotected nodes exist.
    pub fn crashes(g: &Graph, count: usize, round: usize, seed: u64, protect: &[NodeId]) -> Self {
        let mut nodes: Vec<NodeId> = g.nodes().filter(|v| !protect.contains(v)).collect();
        assert!(count <= nodes.len(), "not enough unprotected nodes");
        let mut r = rng::seeded(rng::derive(seed, 0xfa17_0002));
        nodes.shuffle(&mut r);
        let mut plan = Self::new(FaultResponse::Restart);
        for &v in nodes.iter().take(count) {
            plan = plan.at(round, FaultEvent::Crash(v));
        }
        plan
    }

    /// The distinct rounds at which faults fire, ascending.
    pub fn fault_rounds(&self) -> Vec<usize> {
        let mut rounds: Vec<usize> = self.schedule.iter().map(|&(r, _)| r).collect();
        rounds.dedup();
        rounds
    }

    /// The last round at which any fault fires (`None` for an empty plan).
    pub fn last_fault_round(&self) -> Option<usize> {
        self.schedule.last().map(|&(r, _)| r)
    }

    /// Checks the plan against `g`: ids in range, schedule sorted, at most
    /// one event per entity per round, per-node events alternating
    /// crash → recover (starting crashed), per-edge events alternating
    /// down → up (starting down). Returns a description of the first
    /// violation.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let mut last_round = 0usize;
        let mut node_down = vec![false; g.n()];
        let mut edge_down = vec![false; g.m()];
        let mut node_round = vec![usize::MAX; g.n()];
        let mut edge_round = vec![usize::MAX; g.m()];
        for &(round, ev) in &self.schedule {
            if round < last_round {
                return Err(format!("schedule not sorted at round {round}"));
            }
            last_round = round;
            match ev {
                FaultEvent::EdgeDown(e) | FaultEvent::EdgeUp(e) => {
                    if e.index() >= g.m() {
                        return Err(format!("edge {e:?} out of range (m = {})", g.m()));
                    }
                    if edge_round[e.index()] == round {
                        return Err(format!("two events for {e:?} at round {round}"));
                    }
                    edge_round[e.index()] = round;
                    let down = matches!(ev, FaultEvent::EdgeDown(_));
                    if edge_down[e.index()] == down {
                        return Err(format!(
                            "{e:?} already {} at round {round}",
                            if down { "down" } else { "up" }
                        ));
                    }
                    edge_down[e.index()] = down;
                }
                FaultEvent::Crash(v) | FaultEvent::Recover(v) => {
                    if v.index() >= g.n() {
                        return Err(format!("node {v:?} out of range (n = {})", g.n()));
                    }
                    if node_round[v.index()] == round {
                        return Err(format!("two events for {v:?} at round {round}"));
                    }
                    node_round[v.index()] = round;
                    let down = matches!(ev, FaultEvent::Crash(_));
                    if node_down[v.index()] == down {
                        return Err(format!(
                            "{v:?} already {} at round {round}",
                            if down { "crashed" } else { "live" }
                        ));
                    }
                    node_down[v.index()] = down;
                }
            }
        }
        Ok(())
    }

    /// The topology mask after every scheduled event has applied.
    pub fn final_mask(&self, g: &Graph) -> SurvivorMask {
        let mut mask = SurvivorMask::all_up(g);
        for &(_, ev) in &self.schedule {
            mask.apply(ev);
        }
        mask
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} plan, {} events over {} fault rounds",
            self.response,
            self.schedule.len(),
            self.fault_rounds().len()
        )
    }
}

/// A node/edge liveness mask — the surviving topology at some point of a
/// faulty execution. Differential oracles run against the final mask
/// ([`FaultPlan::final_mask`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurvivorMask {
    /// Per node: live?
    pub node_up: Vec<bool>,
    /// Per edge: up? (An up edge is still unusable while either endpoint is
    /// crashed — [`SurvivorMask::allows`] checks all three.)
    pub edge_up: Vec<bool>,
}

impl SurvivorMask {
    /// Everything live, everything up.
    pub fn all_up(g: &Graph) -> Self {
        Self {
            node_up: vec![true; g.n()],
            edge_up: vec![true; g.m()],
        }
    }

    /// Applies one event to the mask.
    pub fn apply(&mut self, ev: FaultEvent) {
        match ev {
            FaultEvent::EdgeDown(e) => self.edge_up[e.index()] = false,
            FaultEvent::EdgeUp(e) => self.edge_up[e.index()] = true,
            FaultEvent::Crash(v) => self.node_up[v.index()] = false,
            FaultEvent::Recover(v) => self.node_up[v.index()] = true,
        }
    }

    /// Whether a message can cross `e` right now: the edge is up and both
    /// endpoints are live.
    pub fn allows(&self, g: &Graph, e: EdgeId) -> bool {
        let (u, v) = g.endpoints(e);
        self.edge_up[e.index()] && self.node_up[u.index()] && self.node_up[v.index()]
    }

    /// The live nodes, ascending.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_up
            .iter()
            .enumerate()
            .filter(|&(_, &up)| up)
            .map(|(i, _)| NodeId::new(i))
    }
}

/// BFS distances from `src` over the masked topology (only live nodes and
/// [`SurvivorMask::allows`]-traversable edges). `None` for crashed or
/// unreachable nodes — the surviving graph may be disconnected, which is
/// fine: the differential oracles compare `Option`s.
pub fn masked_bfs(g: &Graph, mask: &SurvivorMask, src: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.n()];
    if !mask.node_up[src.index()] {
        return dist;
    }
    dist[src.index()] = Some(0);
    let mut frontier = vec![src];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            let d = dist[v.index()].expect("frontier is reached");
            for (e, u) in g.incident(v) {
                if mask.allows(g, e) && dist[u.index()].is_none() {
                    dist[u.index()] = Some(d + 1);
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Connected components of the masked topology: per live node, the smallest
/// node id in its component (`None` for crashed nodes). The per-component
/// minimum is exactly what id-based leader election converges to.
pub fn masked_components(g: &Graph, mask: &SurvivorMask) -> Vec<Option<NodeId>> {
    let mut comp: Vec<Option<NodeId>> = vec![None; g.n()];
    for root in mask.live_nodes() {
        if comp[root.index()].is_some() {
            continue;
        }
        // `root` is the smallest unvisited live id, hence its component's min.
        comp[root.index()] = Some(root);
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for (e, u) in g.incident(v) {
                if mask.allows(g, e) && comp[u.index()].is_none() {
                    comp[u.index()] = Some(root);
                    stack.push(u);
                }
            }
        }
    }
    comp
}

/// Runtime fault state threaded through the runners: the live mask plus a
/// cursor into the plan's schedule.
#[derive(Clone, Debug)]
pub struct FaultState<'p> {
    plan: &'p FaultPlan,
    next: usize,
    /// The current topology mask.
    pub mask: SurvivorMask,
}

impl<'p> FaultState<'p> {
    /// Fresh state for `plan` over `g` (mask starts all-up; events scheduled
    /// at round 0 apply on the first [`FaultState::apply_due`] call).
    pub fn new(plan: &'p FaultPlan, g: &Graph) -> Self {
        Self {
            plan,
            next: 0,
            mask: SurvivorMask::all_up(g),
        }
    }

    /// The response policy of the underlying plan.
    pub fn response(&self) -> FaultResponse {
        self.plan.response
    }

    /// Applies every event due at or before `round`; returns the events that
    /// fired (empty if none were due).
    pub fn apply_due(&mut self, round: usize) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while let Some(&(r, ev)) = self.plan.schedule.get(self.next) {
            if r > round {
                break;
            }
            self.mask.apply(ev);
            fired.push(ev);
            self.next += 1;
        }
        fired
    }

    /// The round of the next unapplied event, if any.
    pub fn next_fault_round(&self) -> Option<usize> {
        self.plan.schedule.get(self.next).map(|&(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn builder_keeps_schedule_sorted() {
        let plan = FaultPlan::new(FaultResponse::Restart)
            .at(5, FaultEvent::Crash(NodeId::new(1)))
            .at(2, FaultEvent::EdgeDown(EdgeId::new(0)))
            .at(5, FaultEvent::Crash(NodeId::new(2)))
            .at(9, FaultEvent::EdgeUp(EdgeId::new(0)));
        let rounds: Vec<usize> = plan.schedule.iter().map(|&(r, _)| r).collect();
        assert_eq!(rounds, vec![2, 5, 5, 9]);
        assert_eq!(plan.fault_rounds(), vec![2, 5, 9]);
        assert_eq!(plan.last_fault_round(), Some(9));
    }

    #[test]
    fn churn_and_crash_generators_validate_and_are_deterministic() {
        let g = generators::gnp_connected(20, 0.2, 3);
        let churn = FaultPlan::edge_churn(&g, 5, 0, 4, 7, FaultResponse::Restart);
        churn.validate(&g).unwrap();
        assert_eq!(churn.schedule.len(), 10);
        assert_eq!(
            churn,
            FaultPlan::edge_churn(&g, 5, 0, 4, 7, FaultResponse::Restart)
        );
        // All edges back up at the end.
        assert!(churn.final_mask(&g).edge_up.iter().all(|&b| b));

        let crash = FaultPlan::crashes(&g, 3, 2, 11, &[NodeId::new(0)]);
        crash.validate(&g).unwrap();
        let mask = crash.final_mask(&g);
        assert_eq!(mask.node_up.iter().filter(|&&b| !b).count(), 3);
        assert!(mask.node_up[0], "protected node survives");
        assert_eq!(crash, FaultPlan::crashes(&g, 3, 2, 11, &[NodeId::new(0)]));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let g = generators::path(4);
        let dup = FaultPlan::new(FaultResponse::Restart)
            .at(1, FaultEvent::Crash(NodeId::new(2)))
            .at(1, FaultEvent::Recover(NodeId::new(2)));
        assert!(dup.validate(&g).is_err(), "same-round pair rejected");
        let early =
            FaultPlan::new(FaultResponse::Restart).at(0, FaultEvent::Recover(NodeId::new(1)));
        assert!(early.validate(&g).is_err(), "recovery before crash");
        let oob =
            FaultPlan::new(FaultResponse::Restart).at(0, FaultEvent::EdgeDown(EdgeId::new(99)));
        assert!(oob.validate(&g).is_err(), "out-of-range edge");
        let twice = FaultPlan::new(FaultResponse::Restart)
            .at(0, FaultEvent::Crash(NodeId::new(1)))
            .at(2, FaultEvent::Crash(NodeId::new(1)));
        assert!(twice.validate(&g).is_err(), "double crash");
    }

    #[test]
    fn masked_bfs_routes_around_faults() {
        // Path 0-1-2-3: crash node 1 and the far side becomes unreachable.
        let g = generators::path(4);
        let plan = FaultPlan::new(FaultResponse::Restart).at(0, FaultEvent::Crash(NodeId::new(1)));
        let mask = plan.final_mask(&g);
        let d = masked_bfs(&g, &mask, NodeId::new(0));
        assert_eq!(d, vec![Some(0), None, None, None]);
        let comp = masked_components(&g, &mask);
        assert_eq!(comp[0], Some(NodeId::new(0)));
        assert_eq!(comp[1], None);
        assert_eq!(comp[2], Some(NodeId::new(2)));
        assert_eq!(comp[3], Some(NodeId::new(2)));
    }

    #[test]
    fn fault_state_applies_due_events_in_order() {
        let g = generators::cycle(5);
        let plan = FaultPlan::new(FaultResponse::SelfHeal)
            .at(0, FaultEvent::EdgeDown(EdgeId::new(1)))
            .at(3, FaultEvent::EdgeUp(EdgeId::new(1)));
        let mut st = FaultState::new(&plan, &g);
        assert_eq!(st.next_fault_round(), Some(0));
        assert_eq!(st.apply_due(0).len(), 1);
        assert!(!st.mask.edge_up[1]);
        assert_eq!(st.next_fault_round(), Some(3));
        assert!(st.apply_due(1).is_empty());
        assert_eq!(st.apply_due(5).len(), 1);
        assert!(st.mask.edge_up[1]);
        assert_eq!(st.next_fault_round(), None);
    }
}
