//! The flat struct-of-arrays message plane: packed round arenas in place of
//! per-node `Vec` mailboxes.
//!
//! The boxed plane (the legacy path in [`crate::shard`]) allocates a typed
//! tuple per in-flight message and pushes it into its receiver's `Vec` inbox —
//! at n = 10⁵–10⁶ the per-round allocator traffic dominates the round loop.
//! [`FlatPlane`] instead stages every emission of a round as a fixed-width
//! record of `u32` lanes (ids packed directly, payloads via
//! [`WireEncode`](crate::WireEncode)) in per-partition arenas, then scatters
//! the records to receivers with a **stable counting sort**:
//!
//! 1. *stage* — senders are partitioned contiguously (mirroring the resolved
//!    [`DeliveryBackend`]'s batching) and each partition appends its records to
//!    its own arena, in sender order. Concatenating arenas in partition order
//!    therefore reproduces the global sender order — the same order every
//!    boxed backend delivers in.
//! 2. *count + charge* — one sequential pass over the arenas bumps the
//!    per-receiver counts and charges [`Metrics`] per record, in the same
//!    global order as the sequential boxed path (and `u64` addition commutes,
//!    so any order gives identical totals).
//! 3. *scatter* — a prefix sum turns counts into receiver offsets; a second
//!    pass moves each record to its receiver's slice of one flat inbox arena.
//!    The scatter is stable, so each receiver sees its messages in global
//!    sender order — byte-identical to every boxed backend. The root
//!    `tests/plane_conformance.rs` suite pins this differentially over the
//!    whole workload registry.
//!
//! All buffers — arenas, counts, offsets, cursors, inbox, per-chunk decode
//! scratch — live in the [`FlatPlane`] and are reused across rounds via
//! `clear()`, so once warm a steady-state round performs **zero heap
//! allocations** (pinned by `crates/engine/tests/alloc_regression.rs`).
//!
//! [`RoundPlane`] is the runner-facing switch: the
//! [`ExecutorConfig::message_plane`] field picks boxed or flat, and both
//! runners drive whichever variant through the same deliver/receive calls.

use crate::exec::{self, DeliveryBackend, ExecutorConfig, MessagePlane};
use crate::metrics::Metrics;
use crate::shard::{self, ShardPlan};
use crate::wire::WireDecode;
use congest_graph::{EdgeId, NodeId};
use std::ops::Range;

/// Reusable flat round buffers for messages of type `M`.
///
/// One value serves one run: construct with [`FlatPlane::new`] for the graph's
/// node count, then alternate [`FlatPlane::deliver`] / [`FlatPlane::receive`]
/// once per round. See the module docs for the layout and the order argument.
#[derive(Debug)]
pub struct FlatPlane<M: WireDecode> {
    /// Per-partition staging arenas; records of `4 + LANES` lanes:
    /// `[receiver, sender, edge, words, payload...]`.
    stages: Vec<Vec<u32>>,
    /// Per-receiver record counts for the round in flight (`n` entries).
    counts: Vec<u32>,
    /// Prefix offsets into the inbox arena, in record units (`n + 1` entries).
    starts: Vec<u32>,
    /// Scatter cursors, reset from `starts` each round (`n` entries).
    cursors: Vec<u32>,
    /// The scattered inbox arena; records of `1 + LANES` lanes:
    /// `[sender, payload...]`, grouped by receiver in `starts` order.
    inbox: Vec<u32>,
    /// Per-chunk decode buffers for the receive phase.
    scratch: Vec<Vec<(NodeId, M)>>,
    /// Reusable sender-partition table for the deliver phase.
    parts: Vec<Range<usize>>,
    /// Records delivered in the round in flight (0 after receive).
    delivered: usize,
}

impl<M: WireDecode + Send + Sync> FlatPlane<M> {
    /// An empty plane for an `n`-node graph. The fixed-size tables are
    /// allocated up front; arenas grow on first use and are reused after.
    pub fn new(n: usize) -> Self {
        Self {
            stages: Vec::new(),
            counts: vec![0; n],
            starts: vec![0; n + 1],
            cursors: Vec::with_capacity(n),
            inbox: Vec::new(),
            scratch: Vec::new(),
            parts: Vec::new(),
            delivered: 0,
        }
    }

    /// Nodes the plane was sized for.
    pub fn n(&self) -> usize {
        self.counts.len()
    }

    /// Stage-record stride in `u32` lanes.
    const fn rec_stride() -> usize {
        4 + M::LANES
    }

    /// Inbox-record stride in `u32` lanes.
    const fn inbox_stride() -> usize {
        1 + M::LANES
    }

    /// Fills `self.parts` with contiguous sender partitions mirroring the
    /// resolved backend's batching. Any contiguous in-order partition
    /// preserves conformance (the scatter is stable over the concatenation);
    /// matching the backend keeps the parallel grain identical to the boxed
    /// path's. The table is reused across rounds — no allocation once warm.
    fn partition<S>(&mut self, cfg: &ExecutorConfig, senders: &[(NodeId, S)]) {
        let n = self.n();
        self.parts.clear();
        match cfg.resolved_backend() {
            DeliveryBackend::Sequential => self.parts.push(0..senders.len()),
            DeliveryBackend::Chunked => {
                let size = exec::chunk_size_for(senders.len(), cfg.effective_threads());
                for c in 0..senders.len().div_ceil(size).max(1) {
                    self.parts
                        .push(c * size..((c + 1) * size).min(senders.len()));
                }
            }
            DeliveryBackend::Sharded { shards } => {
                let plan = ShardPlan::new(n, shards);
                let mut lo = 0usize;
                for s in 0..plan.shards() {
                    let end = plan.range(s).end;
                    let hi = lo + senders[lo..].partition_point(|(v, _)| v.index() < end);
                    self.parts.push(lo..hi);
                    lo = hi;
                }
                debug_assert_eq!(lo, senders.len(), "every sender belongs to a shard");
            }
            // `resolved_backend` maps `Auto` to a concrete backend (the
            // runners resolve it per round before delivery).
            DeliveryBackend::Auto => unreachable!("Auto resolves to a concrete backend"),
        }
    }

    /// Stages, charges and scatters one round of messages.
    ///
    /// Same contract as the boxed `shard::deliver_phase`: `senders` in node
    /// order, `expand` emitting `(receiver, edge, msg)` per message in the
    /// sender's emission order; charges `msg.words()` words and the packed
    /// wire width (`4 × LANES` bytes) per message.
    pub fn deliver<S, F>(
        &mut self,
        cfg: &ExecutorConfig,
        senders: &[(NodeId, S)],
        expand: &F,
        metrics: &mut Metrics,
    ) where
        S: Sync,
        F: Fn(NodeId, &S, &mut dyn FnMut(NodeId, EdgeId, M)) + Sync,
    {
        debug_assert_eq!(self.delivered, 0, "deliver twice without receive");
        let stride = Self::rec_stride();
        self.partition(cfg, senders);
        let n_parts = self.parts.len();
        while self.stages.len() < n_parts {
            self.stages.push(Vec::new());
        }

        // 1. Stage: each partition packs its emissions into its own arena.
        let stage_into = |arena: &mut Vec<u32>, mine: &[(NodeId, S)]| {
            arena.clear();
            for (v, payload) in mine {
                expand(*v, payload, &mut |u, e, m| {
                    let base = arena.len();
                    arena.resize(base + stride, 0);
                    arena[base] = u.raw();
                    arena[base + 1] = v.raw();
                    arena[base + 2] = e.raw();
                    arena[base + 3] = m.words() as u32;
                    m.encode(&mut arena[base + 4..base + stride]);
                });
            }
        };
        let threads = cfg.effective_threads();
        if threads <= 1 || n_parts <= 1 {
            for (arena, part) in self.stages.iter_mut().zip(&self.parts) {
                stage_into(arena, &senders[part.clone()]);
            }
        } else {
            exec::pool_for(threads).scope(|sc| {
                let mut rest = self.stages.as_mut_slice();
                for part in &self.parts {
                    let (arena, tail) = rest.split_first_mut().expect("one arena per partition");
                    rest = tail;
                    let stage_into = &stage_into;
                    let mine = &senders[part.clone()];
                    sc.spawn(move |_| stage_into(arena, mine));
                }
            });
        }

        // 2. Count receivers and charge metrics, in global sender order.
        self.counts.fill(0);
        let bytes = 4 * M::LANES as u64;
        let mut total = 0usize;
        for arena in &self.stages[..n_parts] {
            for rec in arena.chunks_exact(stride) {
                metrics.add_messages_sized(EdgeId::from(rec[2]), u64::from(rec[3]), bytes);
                self.counts[rec[0] as usize] += 1;
                total += 1;
            }
        }

        // 3. Prefix offsets, then stable scatter into the inbox arena.
        let mut acc = 0u32;
        self.starts[0] = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            self.starts[i + 1] = acc;
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.starts[..self.n()]);
        let istride = Self::inbox_stride();
        self.inbox.clear();
        self.inbox.resize(total * istride, 0);
        for arena in &self.stages[..n_parts] {
            for rec in arena.chunks_exact(stride) {
                let u = rec[0] as usize;
                let slot = self.cursors[u] as usize;
                self.cursors[u] += 1;
                let base = slot * istride;
                self.inbox[base] = rec[1];
                self.inbox[base + 1..base + istride].copy_from_slice(&rec[4..]);
            }
        }
        self.delivered = total;
    }

    /// Decodes each non-empty inbox and applies `f(state, inbox)`, chunked
    /// over nodes like the boxed `shard::receive_phase`. Returns whether any
    /// node received.
    pub fn receive<St, F>(&mut self, cfg: &ExecutorConfig, states: &mut [St], f: F) -> bool
    where
        St: Send,
        F: Fn(&mut St, &[(NodeId, M)]) + Sync,
    {
        assert_eq!(states.len(), self.n(), "states must match the plane");
        if self.delivered == 0 {
            return false;
        }
        self.delivered = 0;
        let istride = Self::inbox_stride();
        let decode_range = |start: usize,
                            sts: &mut [St],
                            scratch: &mut Vec<(NodeId, M)>,
                            counts: &[u32],
                            starts: &[u32],
                            inbox: &[u32]| {
            for (off, st) in sts.iter_mut().enumerate() {
                let i = start + off;
                if counts[i] == 0 {
                    continue;
                }
                scratch.clear();
                for k in 0..counts[i] as usize {
                    let base = (starts[i] as usize + k) * istride;
                    scratch.push((
                        NodeId::from(inbox[base]),
                        M::decode(&inbox[base + 1..base + istride]),
                    ));
                }
                f(st, scratch);
            }
        };
        let threads = cfg.effective_threads();
        let n = states.len();
        if threads <= 1 || n <= 1 {
            if self.scratch.is_empty() {
                self.scratch.push(Vec::new());
            }
            decode_range(
                0,
                states,
                &mut self.scratch[0],
                &self.counts,
                &self.starts,
                &self.inbox,
            );
        } else {
            let size = exec::chunk_size_for(n, threads);
            let chunk_count = n.div_ceil(size);
            while self.scratch.len() < chunk_count {
                self.scratch.push(Vec::new());
            }
            let (counts, starts, inbox) = (&self.counts, &self.starts, &self.inbox);
            exec::pool_for(threads).scope(|sc| {
                let mut rest_states = states;
                let mut rest_scratch = self.scratch.as_mut_slice();
                let mut start = 0usize;
                while !rest_states.is_empty() {
                    let take = size.min(rest_states.len());
                    let (chunk, tail) = rest_states.split_at_mut(take);
                    rest_states = tail;
                    let (scr, scr_tail) = rest_scratch
                        .split_first_mut()
                        .expect("one scratch per chunk");
                    rest_scratch = scr_tail;
                    let decode_range = &decode_range;
                    let chunk_start = start;
                    sc.spawn(move |_| decode_range(chunk_start, chunk, scr, counts, starts, inbox));
                    start += take;
                }
            });
        }
        true
    }

    /// Sequential variant passing the node index, for observer hooks: applies
    /// `f(node, state, inbox)` to every node with a non-empty inbox, in node
    /// order. Returns whether any node received.
    pub fn receive_each_seq<St, F>(&mut self, states: &mut [St], mut f: F) -> bool
    where
        F: FnMut(usize, &mut St, &[(NodeId, M)]),
    {
        assert_eq!(states.len(), self.n(), "states must match the plane");
        if self.delivered == 0 {
            return false;
        }
        self.delivered = 0;
        if self.scratch.is_empty() {
            self.scratch.push(Vec::new());
        }
        let istride = Self::inbox_stride();
        let scratch = &mut self.scratch[0];
        for (i, st) in states.iter_mut().enumerate() {
            if self.counts[i] == 0 {
                continue;
            }
            scratch.clear();
            for k in 0..self.counts[i] as usize {
                let base = (self.starts[i] as usize + k) * istride;
                scratch.push((
                    NodeId::from(self.inbox[base]),
                    M::decode(&self.inbox[base + 1..base + istride]),
                ));
            }
            f(i, st, scratch);
        }
        true
    }
}

/// The runner-facing plane switch: boxed per-node mailboxes or the flat
/// arena plane, selected by [`ExecutorConfig::message_plane`]. Both variants
/// expose the same deliver/receive cycle and produce byte-identical inbox
/// sequences and [`Metrics`].
#[derive(Debug)]
pub enum RoundPlane<M: WireDecode> {
    /// Legacy typed mailboxes, delivered through [`crate::shard`].
    Boxed(Vec<Vec<(NodeId, M)>>),
    /// The packed arena plane.
    Flat(FlatPlane<M>),
}

impl<M: WireDecode + Send + Sync> RoundPlane<M> {
    /// A plane for an `n`-node graph, picked by `cfg.message_plane`.
    pub fn new(cfg: &ExecutorConfig, n: usize) -> Self {
        match cfg.message_plane {
            MessagePlane::Boxed => RoundPlane::Boxed(vec![Vec::new(); n]),
            MessagePlane::Flat => RoundPlane::Flat(FlatPlane::new(n)),
        }
    }

    /// Delivers one round of messages (see `shard::deliver_phase` /
    /// [`FlatPlane::deliver`] for the shared contract).
    pub fn deliver<S, F>(
        &mut self,
        cfg: &ExecutorConfig,
        senders: &[(NodeId, S)],
        expand: &F,
        metrics: &mut Metrics,
    ) where
        S: Sync,
        F: Fn(NodeId, &S, &mut dyn FnMut(NodeId, EdgeId, M)) + Sync,
    {
        match self {
            RoundPlane::Boxed(inboxes) => {
                shard::deliver_phase(cfg, senders, expand, metrics, inboxes);
            }
            RoundPlane::Flat(plane) => plane.deliver(cfg, senders, expand, metrics),
        }
    }

    /// Applies `f(state, inbox)` to every node with a non-empty inbox.
    /// Returns whether any node received.
    pub fn receive<St, F>(&mut self, cfg: &ExecutorConfig, states: &mut [St], f: F) -> bool
    where
        St: Send,
        F: Fn(&mut St, &[(NodeId, M)]) + Sync,
    {
        match self {
            RoundPlane::Boxed(inboxes) => {
                shard::receive_phase(cfg, states, inboxes, |st, inbox| f(st, &inbox))
            }
            RoundPlane::Flat(plane) => plane.receive(cfg, states, f),
        }
    }

    /// Sequential receive passing the node index (observer hooks — the
    /// callback sees inboxes in node order regardless of backend).
    pub fn receive_each_seq<St, F>(&mut self, states: &mut [St], mut f: F) -> bool
    where
        F: FnMut(usize, &mut St, &[(NodeId, M)]),
    {
        match self {
            RoundPlane::Boxed(inboxes) => {
                let mut any = false;
                for (i, st) in states.iter_mut().enumerate() {
                    if !inboxes[i].is_empty() {
                        any = true;
                        let inbox = std::mem::take(&mut inboxes[i]);
                        f(i, st, &inbox);
                    }
                }
                any
            }
            RoundPlane::Flat(plane) => plane.receive_each_seq(states, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, Graph};

    fn configs() -> Vec<ExecutorConfig> {
        vec![
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(4),
            ExecutorConfig::sharded(3),
            ExecutorConfig::sequential().with_backend(DeliveryBackend::Sharded { shards: 4 }),
        ]
    }

    /// Every third node floods its ID; returns metrics plus the received
    /// `(receiver → [(sender, msg)])` transcript.
    fn run_round(
        g: &Graph,
        cfg: &ExecutorConfig,
        rounds: usize,
    ) -> (Metrics, Vec<Vec<(NodeId, u64)>>) {
        let senders: Vec<(NodeId, u64)> = g
            .nodes()
            .filter(|v| v.index() % 3 == 0)
            .map(|v| (v, v.index() as u64))
            .collect();
        let expand = |v: NodeId, payload: &u64, sink: &mut dyn FnMut(NodeId, EdgeId, u64)| {
            for (e, u) in g.incident(v) {
                sink(u, e, *payload);
            }
        };
        let mut metrics = Metrics::new(g.m());
        let mut plane: RoundPlane<u64> = RoundPlane::new(cfg, g.n());
        let mut transcript: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); g.n()];
        for _ in 0..rounds {
            plane.deliver(cfg, &senders, &expand, &mut metrics);
            let mut sink: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); g.n()];
            plane.receive(cfg, &mut sink, |slot, inbox| {
                slot.extend_from_slice(inbox);
            });
            for (t, s) in transcript.iter_mut().zip(sink) {
                t.extend(s);
            }
        }
        (metrics, transcript)
    }

    #[test]
    fn flat_matches_boxed_for_every_backend() {
        for g in [
            generators::gnp_connected(30, 0.2, 5),
            generators::star(17),
            generators::path(23),
        ] {
            let (base_m, base_t) = run_round(&g, &ExecutorConfig::sequential(), 2);
            for cfg in configs() {
                for plane in [MessagePlane::Boxed, MessagePlane::Flat] {
                    let cfg = cfg.clone().with_plane(plane);
                    let (m, t) = run_round(&g, &cfg, 2);
                    assert_eq!(base_m, m, "metrics under {cfg:?}");
                    assert_eq!(base_t, t, "inbox order under {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn empty_round_is_free_and_receive_reports_false() {
        let cfg = ExecutorConfig::sequential().with_plane(MessagePlane::Flat);
        let mut plane: RoundPlane<u32> = RoundPlane::new(&cfg, 4);
        let expand = |_v: NodeId, _p: &u32, _s: &mut dyn FnMut(NodeId, EdgeId, u32)| {
            panic!("no senders, no expansion")
        };
        let mut metrics = Metrics::new(3);
        plane.deliver(&cfg, &[], &expand, &mut metrics);
        assert_eq!(metrics.messages, 0);
        let mut states = vec![0u32; 4];
        assert!(!plane.receive(&cfg, &mut states, |_st, _inbox| panic!(
            "nothing to receive"
        )));
    }
}
