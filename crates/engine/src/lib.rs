//! # congest-engine
//!
//! Synchronous execution engine for the CONGEST/BCONGEST models (paper §1.1) with exact
//! round, message, broadcast-complexity, and per-edge-congestion accounting.
//!
//! The pieces:
//!
//! * [`BcongestAlgorithm`] / [`AggregationAlgorithm`] — algorithms as pure per-node
//!   state machines (the workspace's central abstraction; see module docs);
//! * [`run_bcongest`] — direct BCONGEST execution (counts the paper's broadcast
//!   complexity `B` and the `Σ deg` message cost);
//! * [`router`] — store-and-forward packet routing under per-edge capacity (real
//!   schedules, LMR/Theorem-1.3 style);
//! * [`treeops`] — the upcast/downcast primitives of Lemmas 1.5/1.6 over [`Forest`]s,
//!   plus budget-enforcing convergecast/broadcast passes;
//! * [`exec`] / [`ExecutorConfig`] — deterministic chunked-parallel execution of the
//!   per-node phases (outputs and metrics are byte-identical at every thread count);
//! * [`shard`] / [`DeliveryBackend`] — pluggable message-delivery backends
//!   (sequential, chunk-parallel, sharded mailboxes with batched cross-shard
//!   queues), all byte-identical to the sequential path;
//! * [`plane`] / [`MessagePlane`] — pluggable round-buffer representations
//!   (boxed per-node mailboxes vs the flat packed-arena plane whose
//!   steady-state rounds are allocation-free), also byte-identical;
//! * [`faults`] / [`FaultPlan`] — seeded, deterministic fault injection (edge
//!   churn, node crash/recovery with message-drop semantics) threaded through
//!   both runners under every backend × plane combination;
//! * [`trace`] / [`TraceLog`] — per-round execution recording (sends,
//!   deliveries, fault events, metric deltas) with JSONL/DOT export and a
//!   replay path that re-executes a recorded run and checks byte equality;
//! * [`Metrics`] — composable cost accounting;
//! * [`Wire`] — message sizes in `O(log n)`-bit words, with
//!   [`WireEncode`]/[`WireDecode`] packing fixed-width payloads into `u32`
//!   lanes for the flat plane.
//!
//! ## Example: running a BCONGEST algorithm directly
//!
//! ```
//! use congest_engine::{run_bcongest, RunOptions, BcongestAlgorithm, LocalView};
//! use congest_graph::{generators, NodeId};
//!
//! // A one-shot algorithm: every node broadcasts its ID once; outputs its min neighbor.
//! struct MinNeighbor;
//! #[derive(Clone, Debug)]
//! struct St { me: u32, best: u32, sent: bool }
//! impl BcongestAlgorithm for MinNeighbor {
//!     type State = St;
//!     type Msg = u32;
//!     type Output = u32;
//!     fn name(&self) -> &'static str { "min-neighbor" }
//!     fn init(&self, v: &LocalView<'_>) -> St {
//!         St { me: v.node().raw(), best: u32::MAX, sent: false }
//!     }
//!     fn broadcast(&self, s: &St, _r: usize) -> Option<u32> { (!s.sent).then_some(s.me) }
//!     fn on_broadcast_sent(&self, s: &mut St, _r: usize) { s.sent = true; }
//!     fn receive(&self, s: &mut St, _r: usize, msgs: &[(NodeId, u32)]) {
//!         for &(_, m) in msgs { s.best = s.best.min(m); }
//!     }
//!     fn is_done(&self, s: &St) -> bool { s.sent }
//!     fn output(&self, s: &St) -> u32 { s.best }
//!     fn round_bound(&self, _n: usize, _m: usize) -> usize { 1 }
//!     fn output_words(&self, _o: &u32) -> usize { 1 }
//! }
//!
//! let g = generators::cycle(5);
//! let run = run_bcongest(&MinNeighbor, &g, None, &RunOptions::default()).unwrap();
//! assert_eq!(run.metrics.broadcasts, 5);      // broadcast complexity B
//! assert_eq!(run.metrics.messages, 10);       // Σ deg over broadcasters
//! assert_eq!(run.outputs[0], 1);              // node 0's neighbors are 1 and 4
//! ```

mod bcongest;
mod congest;
mod error;
pub mod exec;
pub mod faults;
mod metrics;
pub mod plane;
pub mod router;
pub mod shard;
pub mod trace;
pub mod treeops;
mod view;
mod wire;

pub use bcongest::{
    run_bcongest, run_bcongest_observed, AggregationAlgorithm, BcongestAlgorithm, BcongestRun,
    RunOptions,
};
pub use congest::{run_congest, run_congest_observed, CongestAlgorithm, CongestRun};
pub use error::EngineError;
pub use exec::{
    AutoCostModel, BackendChooser, BackendDecision, DeliveryBackend, ExecutorConfig,
    ExecutorConfigBuilder, MessagePlane,
};
pub use faults::{FaultEvent, FaultPlan, FaultResponse, SurvivorMask};
pub use metrics::Metrics;
pub use plane::{FlatPlane, RoundPlane};
pub use shard::ShardPlan;
pub use trace::TraceLog;
pub use treeops::{
    broadcast, broadcast_with, convergecast, convergecast_with, downcast, downcast_budgeted,
    downcast_with, upcast, upcast_budgeted, upcast_with, BroadcastOutcome, ConvergecastOutcome,
    Delivered, DowncastOutcome, Forest, UpcastOutcome,
};
pub use view::LocalView;
pub use wire::{Wire, WireDecode, WireEncode};
