//! Store-and-forward packet routing under CONGEST capacity.
//!
//! Every directed edge carries at most one word per round; packets queue FIFO. This is
//! the execution substrate behind the Leighton–Maggs–Rao-style accounting the paper
//! leans on (Theorem 1.3): a real schedule is produced and measured, so routed rounds
//! reflect `O(congestion + dilation)` behaviour rather than assuming it.

use crate::error::EngineError;
use crate::exec::{self, ExecutorConfig};
use crate::metrics::Metrics;
use congest_graph::{Graph, NodeId};
use std::collections::VecDeque;

/// One routing task: deliver a payload of `words` words along `path` (a walk whose
/// first node is the source, last is the destination).
#[derive(Clone, Debug)]
pub struct RouteTask {
    /// Nodes of the walk, consecutive nodes adjacent. A single-node path delivers
    /// locally for free.
    pub path: Vec<NodeId>,
    /// Payload size in words; each word is a separate message.
    pub words: usize,
}

/// Outcome of a routed batch.
#[derive(Clone, Debug)]
pub struct RouteReport {
    /// Rounds/messages/congestion of the whole batch.
    pub metrics: Metrics,
    /// Round (1-based) at which each task's last word arrived; 0 for local deliveries.
    pub completion_round: Vec<u64>,
    /// The dilation: maximum path length over tasks.
    pub dilation: usize,
    /// The congestion: maximum over directed edges of words scheduled through it.
    pub congestion: u64,
}

/// Routes all `tasks` simultaneously and returns the realized schedule's measures.
///
/// Packets are injected at round 0 in task order and forwarded FIFO; each directed edge
/// carries one word per round.
///
/// # Errors
///
/// Returns [`EngineError::InvalidPath`] if some path is not a walk in `g`.
pub fn route(g: &Graph, tasks: &[RouteTask]) -> Result<RouteReport, EngineError> {
    route_with(g, tasks, &ExecutorConfig::default())
}

/// [`route`] with an explicit executor: the per-task path→directed-edge
/// precompute (the pure part — one `edge_between` lookup per hop) is sharded
/// over task chunks. The FIFO scheduling loop itself stays sequential: its
/// global queue order *is* the synchronous-round semantics being measured.
/// Reports are identical at every thread count.
///
/// # Errors
///
/// Returns [`EngineError::InvalidPath`] (lowest failing task index, like the
/// sequential path) if some path is not a walk in `g`.
pub fn route_with(
    g: &Graph,
    tasks: &[RouteTask],
    cfg: &ExecutorConfig,
) -> Result<RouteReport, EngineError> {
    // Directed edge index: 2*e for canonical u->v, 2*e+1 for v->u.
    let dir_edge = |from: NodeId, to: NodeId, task: usize| -> Result<usize, EngineError> {
        let e = g
            .edge_between(from, to)
            .ok_or(EngineError::InvalidPath { task })?;
        let (u, _) = g.endpoints(e);
        Ok(if u == from {
            2 * e.index()
        } else {
            2 * e.index() + 1
        })
    };

    // Precompute each task's directed edge sequence, task chunks in parallel.
    // Chunk results merge in task order, so the first error reported is the
    // lowest failing task index — exactly the sequential behaviour.
    let mut seqs: Vec<Vec<usize>> = Vec::with_capacity(tasks.len());
    for chunk in exec::map_chunks(cfg, tasks, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(off, t)| {
                let mut seq = Vec::with_capacity(t.path.len().saturating_sub(1));
                for w in t.path.windows(2) {
                    seq.push(dir_edge(w[0], w[1], start + off)?);
                }
                Ok(seq)
            })
            .collect::<Result<Vec<_>, EngineError>>()
    }) {
        seqs.extend(chunk?);
    }

    let mut metrics = Metrics::new(g.m());
    let mut completion = vec![0u64; tasks.len()];
    let dilation = seqs.iter().map(Vec::len).max().unwrap_or(0);

    // Static congestion (for reporting): words per directed edge.
    let mut planned = vec![0u64; 2 * g.m()];
    for (t, seq) in tasks.iter().zip(&seqs) {
        for &d in seq {
            planned[d] += t.words as u64;
        }
    }
    let congestion = planned.iter().copied().max().unwrap_or(0);

    // Packet = (task, hop index next to traverse). Each word is its own packet.
    // Only non-empty queues are visited each round, so a whole routed batch costs
    // O(total word-hops + rounds) work.
    let mut queues: Vec<VecDeque<(usize, usize)>> = vec![VecDeque::new(); 2 * g.m()];
    let mut is_active = vec![false; 2 * g.m()];
    let mut active: Vec<usize> = Vec::new();
    let mut outstanding: Vec<usize> = tasks.iter().map(|t| t.words).collect();
    let mut remaining_packets = 0usize;
    for (i, (t, seq)) in tasks.iter().zip(&seqs).enumerate() {
        if seq.is_empty() || t.words == 0 {
            completion[i] = 0;
            outstanding[i] = 0;
            continue;
        }
        for _ in 0..t.words {
            queues[seq[0]].push_back((i, 0));
            remaining_packets += 1;
        }
        if !is_active[seq[0]] {
            is_active[seq[0]] = true;
            active.push(seq[0]);
        }
    }

    let mut round: u64 = 0;
    while remaining_packets > 0 {
        round += 1;
        // Each directed edge forwards one packet; arrivals are buffered and enqueued
        // after the send phase (synchronous semantics).
        let mut arrivals: Vec<(usize, usize)> = Vec::with_capacity(active.len());
        let mut survivors: Vec<usize> = Vec::with_capacity(active.len());
        for &d in &active {
            let (task, hop) = queues[d].pop_front().expect("active queues are non-empty");
            let e = congest_graph::EdgeId::new(d / 2);
            metrics.add_messages(e, 1);
            arrivals.push((task, hop + 1));
            if queues[d].is_empty() {
                is_active[d] = false;
            } else {
                survivors.push(d);
            }
        }
        active = survivors;
        for (task, hop) in arrivals {
            if hop == seqs[task].len() {
                outstanding[task] -= 1;
                remaining_packets -= 1;
                if outstanding[task] == 0 {
                    completion[task] = round;
                }
            } else {
                let d = seqs[task][hop];
                queues[d].push_back((task, hop));
                if !is_active[d] {
                    is_active[d] = true;
                    active.push(d);
                }
            }
        }
    }
    metrics.rounds = round;

    Ok(RouteReport {
        metrics,
        completion_round: completion,
        dilation,
        congestion,
    })
}

/// Builds the unique path from `v` up to the root in a parent forest, inclusive of both
/// endpoints. Helper for tree-based routing.
pub fn path_to_root(parent: &[Option<NodeId>], v: NodeId) -> Vec<NodeId> {
    let mut path = vec![v];
    let mut cur = v;
    while let Some(p) = parent[cur.index()] {
        path.push(p);
        cur = p;
        debug_assert!(path.len() <= parent.len(), "cycle in parent pointers");
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn single_packet_takes_dilation_rounds() {
        let g = generators::path(5);
        let task = RouteTask {
            path: (0..5).map(NodeId::new).collect(),
            words: 1,
        };
        let r = route(&g, &[task]).expect("route the single task");
        assert_eq!(r.metrics.rounds, 4);
        assert_eq!(r.metrics.messages, 4);
        assert_eq!(r.dilation, 4);
        assert_eq!(r.completion_round, vec![4]);
    }

    #[test]
    fn multiword_pipelines() {
        // k words over a d-hop path should take d + k - 1 rounds (pipelining).
        let g = generators::path(4);
        let task = RouteTask {
            path: (0..4).map(NodeId::new).collect(),
            words: 5,
        };
        let r = route(&g, &[task]).expect("route the single task");
        assert_eq!(r.metrics.rounds, 3 + 5 - 1);
        assert_eq!(r.metrics.messages, 15);
    }

    #[test]
    fn contention_serializes() {
        // Two packets over the same edge: 2 rounds, not 1.
        let g = generators::path(2);
        let t = RouteTask {
            path: vec![NodeId::new(0), NodeId::new(1)],
            words: 1,
        };
        let r = route(&g, &[t.clone(), t]).expect("route two contending tasks");
        assert_eq!(r.metrics.rounds, 2);
        assert_eq!(r.congestion, 2);
    }

    #[test]
    fn opposite_directions_dont_contend() {
        let g = generators::path(2);
        let a = RouteTask {
            path: vec![NodeId::new(0), NodeId::new(1)],
            words: 1,
        };
        let b = RouteTask {
            path: vec![NodeId::new(1), NodeId::new(0)],
            words: 1,
        };
        let r = route(&g, &[a, b]).expect("route opposite-direction tasks");
        assert_eq!(r.metrics.rounds, 1);
    }

    #[test]
    fn local_delivery_is_free() {
        let g = generators::path(2);
        let t = RouteTask {
            path: vec![NodeId::new(0)],
            words: 3,
        };
        let r = route(&g, &[t]).expect("route the local-delivery task");
        assert_eq!(r.metrics.rounds, 0);
        assert_eq!(r.metrics.messages, 0);
    }

    #[test]
    fn invalid_path_rejected() {
        let g = generators::path(3);
        let t = RouteTask {
            path: vec![NodeId::new(0), NodeId::new(2)],
            words: 1,
        };
        assert_eq!(
            route(&g, &[t]).unwrap_err(),
            EngineError::InvalidPath { task: 0 }
        );
    }

    #[test]
    fn schedule_length_within_congestion_plus_dilation() {
        // LMR-flavoured sanity: realized rounds <= congestion + dilation on a shared path.
        let g = generators::path(6);
        let tasks: Vec<RouteTask> = (0..4)
            .map(|_| RouteTask {
                path: (0..6).map(NodeId::new).collect(),
                words: 2,
            })
            .collect();
        let r = route(&g, &tasks).expect("route the shared-path batch");
        assert!(r.metrics.rounds <= r.congestion + r.dilation as u64);
    }

    #[test]
    fn path_to_root_works() {
        let parent = vec![None, Some(NodeId::new(0)), Some(NodeId::new(1))];
        let p = path_to_root(&parent, NodeId::new(2));
        assert_eq!(p, vec![NodeId::new(2), NodeId::new(1), NodeId::new(0)]);
    }
}
