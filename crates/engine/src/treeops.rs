//! Forests and the upcast/downcast/convergecast/broadcast primitives (paper §1.4.2,
//! Lemmas 1.5 and 1.6, plus the aggregation passes every fragment/tree algorithm uses).
//!
//! * **Upcast** (Lemma 1.5): every node holds input items; all items flow to their
//!   tree's root, each node forwarding one word to its parent per round.
//! * **Downcast** (Lemma 1.6): roots hold addressed items; each item flows down the
//!   unique root→destination path, one word per edge per round.
//! * **Convergecast** ([`convergecast`]): one value per node, folded bottom-up with a
//!   caller-supplied combiner; each tree edge carries exactly one combined payload
//!   (the MWOE search of GHS-style MST, subtree counting, …).
//! * **Broadcast** ([`broadcast`]): one payload per root, flooded down its whole tree;
//!   each tree edge carries the payload once (fragment-ID dissemination, "everyone
//!   learn `n`", …).
//!
//! Upcast/downcast are executed as real packet schedules (via [`crate::router`]), so
//! the returned metrics are realized costs, which the tests compare against the
//! lemmas' bounds (`O(I_n/log n)` rounds / `O(d·I_n/log n)` messages for upcast over
//! depth-`d` forests, `O(|M|+d)` rounds / `O(d·|M|)` messages for downcast).
//! Convergecast/broadcast use the obvious level-synchronous schedule (`depth·w`
//! rounds, one `w`-word payload per tree edge) and charge exactly that.
//!
//! Every primitive has a **per-call message budget** form: pass `Some(budget)` (or use
//! [`upcast_budgeted`] / [`downcast_budgeted`]) and the call fails with
//! [`EngineError::BudgetExceeded`] instead of silently overspending — the enforcement
//! hook for "message-optimal" claims.
//!
//! Every primitive also has a `_with` form taking an
//! [`ExecutorConfig`], threading the executor's delivery
//! backend through the schedule: upcast/downcast hand it to the router's
//! path precompute, and convergecast/broadcast under
//! [`DeliveryBackend::Sharded`] run their level-synchronous schedule over
//! per-shard batch queues (the MST phase loop's announce → convergecast →
//! merge is the first workload). Outcomes and metrics are byte-identical for
//! every backend — `tests/backend_conformance.rs` pins it.

use crate::error::EngineError;
use crate::exec::{DeliveryBackend, ExecutorConfig};
use crate::metrics::Metrics;
use crate::router::{self, RouteTask};
use crate::shard::ShardPlan;
use crate::wire::Wire;
use congest_graph::{EdgeId, Graph, NodeId};

/// A rooted spanning forest of (a subset of) the graph: parent pointers that follow
/// edges of `g`. Nodes with no parent are roots (singleton trees are fine).
#[derive(Clone, Debug)]
pub struct Forest {
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    root_of: Vec<NodeId>,
    depth_of: Vec<u32>,
    depth: u32,
    roots: Vec<NodeId>,
    tree_edges: Vec<EdgeId>,
}

impl Forest {
    /// Builds a forest from parent pointers, validating that every pointer follows an
    /// edge of `g` and that there are no cycles.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidForest`] on a non-edge parent link or a cycle.
    pub fn from_parents(g: &Graph, parent: Vec<Option<NodeId>>) -> Result<Self, EngineError> {
        assert_eq!(parent.len(), g.n(), "parent vector must cover all nodes");
        let mut parent_edge = vec![None; g.n()];
        let mut tree_edges = Vec::new();
        for v in g.nodes() {
            if let Some(p) = parent[v.index()] {
                let e = g
                    .edge_between(v, p)
                    .ok_or_else(|| EngineError::InvalidForest {
                        reason: format!("parent link {v:?}->{p:?} is not an edge"),
                    })?;
                parent_edge[v.index()] = Some(e);
                tree_edges.push(e);
            }
        }
        // Depth computation; also detects cycles (a cycle never resolves).
        let mut depth_of = vec![u32::MAX; g.n()];
        let mut root_of = vec![NodeId::new(0); g.n()];
        let mut roots = Vec::new();
        for v in g.nodes() {
            if parent[v.index()].is_none() {
                depth_of[v.index()] = 0;
                root_of[v.index()] = v;
                roots.push(v);
            }
        }
        for v in g.nodes() {
            if depth_of[v.index()] != u32::MAX {
                continue;
            }
            // Walk up to a resolved ancestor.
            let mut chain = vec![v];
            let mut cur = v;
            loop {
                let p = parent[cur.index()]
                    .ok_or(())
                    .map_err(|_| EngineError::InvalidForest {
                        reason: "internal: root should be resolved".into(),
                    })?;
                if chain.len() > g.n() {
                    return Err(EngineError::InvalidForest {
                        reason: format!("cycle through {v:?}"),
                    });
                }
                if depth_of[p.index()] != u32::MAX {
                    let mut d = depth_of[p.index()];
                    let r = root_of[p.index()];
                    for &c in chain.iter().rev() {
                        d += 1;
                        depth_of[c.index()] = d;
                        root_of[c.index()] = r;
                    }
                    break;
                }
                chain.push(p);
                cur = p;
            }
        }
        let depth = depth_of.iter().copied().max().unwrap_or(0);
        Ok(Self {
            parent,
            parent_edge,
            root_of,
            depth_of,
            depth,
            roots,
            tree_edges,
        })
    }

    /// The parent of `v`, if any.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The edge to `v`'s parent, if any.
    #[inline]
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// The root of `v`'s tree.
    #[inline]
    pub fn root_of(&self, v: NodeId) -> NodeId {
        self.root_of[v.index()]
    }

    /// `v`'s depth (0 at roots).
    #[inline]
    pub fn depth_of(&self, v: NodeId) -> u32 {
        self.depth_of[v.index()]
    }

    /// Maximum depth of the forest.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// All roots (nodes without parents).
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// All tree edges.
    pub fn tree_edges(&self) -> &[EdgeId] {
        &self.tree_edges
    }

    /// The path from `v` to its root (inclusive).
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        router::path_to_root(&self.parent, v)
    }

    /// Members of each tree, grouped by root (in node order).
    pub fn members_by_root(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut groups: Vec<(NodeId, Vec<NodeId>)> =
            self.roots.iter().map(|&r| (r, Vec::new())).collect();
        let mut slot = vec![usize::MAX; self.parent.len()];
        for (i, &(r, _)) in groups.iter().enumerate() {
            slot[r.index()] = i;
        }
        for v in 0..self.parent.len() {
            let v = NodeId::new(v);
            groups[slot[self.root_of(v).index()]].1.push(v);
        }
        groups
    }
}

/// One item delivered by [`upcast`]: who originated it and its payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivered<P> {
    /// Node at which the item was inserted.
    pub origin: NodeId,
    /// The payload.
    pub payload: P,
}

/// Result of an [`upcast`] run.
#[derive(Clone, Debug)]
pub struct UpcastOutcome<P> {
    /// Items received at each root: parallel to `Forest::roots()`.
    pub at_root: Vec<Vec<Delivered<P>>>,
    /// Realized cost of the operation.
    pub metrics: Metrics,
}

/// Upcasts `items` (at their origin nodes) to their tree roots (Lemma 1.5).
///
/// # Errors
///
/// Propagates routing errors (cannot occur for a validated forest).
pub fn upcast<P: Wire>(
    g: &Graph,
    forest: &Forest,
    items: Vec<(NodeId, P)>,
) -> Result<UpcastOutcome<P>, EngineError> {
    upcast_with(g, forest, items, &ExecutorConfig::default())
}

/// [`upcast`] with an explicit executor: the per-task path→edge precompute of
/// the realized schedule runs through `cfg` (see [`router::route_with`]).
/// Outcomes and metrics are identical for every backend and thread count.
///
/// # Errors
///
/// Propagates routing errors (cannot occur for a validated forest).
pub fn upcast_with<P: Wire>(
    g: &Graph,
    forest: &Forest,
    items: Vec<(NodeId, P)>,
    cfg: &ExecutorConfig,
) -> Result<UpcastOutcome<P>, EngineError> {
    let tasks: Vec<RouteTask> = items
        .iter()
        .map(|(v, p)| RouteTask {
            path: forest.path_to_root(*v),
            words: p.words(),
        })
        .collect();
    let report = router::route_with(g, &tasks, cfg)?;

    let mut root_slot = vec![usize::MAX; g.n()];
    for (i, &r) in forest.roots().iter().enumerate() {
        root_slot[r.index()] = i;
    }
    let mut at_root: Vec<Vec<Delivered<P>>> = vec![Vec::new(); forest.roots().len()];
    // Delivery order: by completion round, ties by insertion order (matches the
    // realized schedule).
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| report.completion_round[i]);
    for i in order {
        let (v, p) = &items[i];
        let root = forest.root_of(*v);
        at_root[root_slot[root.index()]].push(Delivered {
            origin: *v,
            payload: p.clone(),
        });
    }
    Ok(UpcastOutcome {
        at_root,
        metrics: report.metrics,
    })
}

/// Result of a [`downcast`] run.
#[derive(Clone, Debug)]
pub struct DowncastOutcome<P> {
    /// Items received at each destination node (index = node).
    pub at_node: Vec<Vec<P>>,
    /// Realized cost of the operation.
    pub metrics: Metrics,
}

/// Downcasts addressed `items` from each destination's tree root to the destination
/// (Lemma 1.6). Items destined to a root are delivered locally for free.
///
/// # Errors
///
/// Propagates routing errors (cannot occur for a validated forest).
pub fn downcast<P: Wire>(
    g: &Graph,
    forest: &Forest,
    items: Vec<(NodeId, P)>,
) -> Result<DowncastOutcome<P>, EngineError> {
    downcast_with(g, forest, items, &ExecutorConfig::default())
}

/// [`downcast`] with an explicit executor (see [`upcast_with`]). Outcomes and
/// metrics are identical for every backend and thread count.
///
/// # Errors
///
/// Propagates routing errors (cannot occur for a validated forest).
pub fn downcast_with<P: Wire>(
    g: &Graph,
    forest: &Forest,
    items: Vec<(NodeId, P)>,
    cfg: &ExecutorConfig,
) -> Result<DowncastOutcome<P>, EngineError> {
    let tasks: Vec<RouteTask> = items
        .iter()
        .map(|(dest, p)| {
            let mut path = forest.path_to_root(*dest);
            path.reverse();
            RouteTask {
                path,
                words: p.words(),
            }
        })
        .collect();
    let report = router::route_with(g, &tasks, cfg)?;

    let mut at_node: Vec<Vec<P>> = vec![Vec::new(); g.n()];
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| report.completion_round[i]);
    for i in order {
        let (dest, p) = &items[i];
        at_node[dest.index()].push(p.clone());
    }
    Ok(DowncastOutcome {
        at_node,
        metrics: report.metrics,
    })
}

/// Fails with [`EngineError::BudgetExceeded`] if `used` exceeds a given budget
/// (`None` = unlimited). The single budget-enforcement point: the budgeted
/// primitives below go through it, and budgeted algorithms (e.g. the GHS MST)
/// reuse it for the phases they charge directly.
pub fn ensure_budget(op: &'static str, used: u64, budget: Option<u64>) -> Result<(), EngineError> {
    match budget {
        Some(b) if used > b => Err(EngineError::BudgetExceeded {
            op,
            used,
            budget: b,
        }),
        _ => Ok(()),
    }
}

/// [`upcast`] with a hard per-call message budget.
///
/// # Errors
///
/// [`EngineError::BudgetExceeded`] if the realized schedule needs more than `budget`
/// messages; otherwise like [`upcast`].
pub fn upcast_budgeted<P: Wire>(
    g: &Graph,
    forest: &Forest,
    items: Vec<(NodeId, P)>,
    budget: u64,
) -> Result<UpcastOutcome<P>, EngineError> {
    let out = upcast(g, forest, items)?;
    ensure_budget("upcast", out.metrics.messages, Some(budget))?;
    Ok(out)
}

/// [`downcast`] with a hard per-call message budget.
///
/// # Errors
///
/// [`EngineError::BudgetExceeded`] if the realized schedule needs more than `budget`
/// messages; otherwise like [`downcast`].
pub fn downcast_budgeted<P: Wire>(
    g: &Graph,
    forest: &Forest,
    items: Vec<(NodeId, P)>,
    budget: u64,
) -> Result<DowncastOutcome<P>, EngineError> {
    let out = downcast(g, forest, items)?;
    ensure_budget("downcast", out.metrics.messages, Some(budget))?;
    Ok(out)
}

/// Result of a [`convergecast`] run.
#[derive(Clone, Debug)]
pub struct ConvergecastOutcome<P> {
    /// The folded value at each root: parallel to `Forest::roots()`.
    pub at_root: Vec<P>,
    /// Realized cost of the operation.
    pub metrics: Metrics,
}

/// Folds one value per node up to its tree root (bottom-up aggregation).
///
/// Every node combines its children's aggregates into its own value — children in
/// increasing node-ID order — and sends the result to its parent as one payload, so
/// each tree edge carries exactly one combined payload. The schedule is
/// level-synchronous: `depth · w` rounds, where `w` is the largest payload sent.
/// With an associative, commutative `combine` the result is schedule-independent;
/// either way the fold order above makes it deterministic.
///
/// Pass `budget = Some(limit)` to fail instead of overspending.
///
/// # Errors
///
/// [`EngineError::BudgetExceeded`] if the realized message count exceeds `budget`.
///
/// # Panics
///
/// Panics if `values.len() != g.n()` (one value per node).
pub fn convergecast<P: Wire + Send>(
    g: &Graph,
    forest: &Forest,
    values: Vec<P>,
    combine: impl Fn(P, P) -> P + Sync,
    budget: Option<u64>,
) -> Result<ConvergecastOutcome<P>, EngineError> {
    convergecast_with(
        g,
        forest,
        values,
        combine,
        budget,
        &ExecutorConfig::default(),
    )
}

/// [`convergecast`] with an explicit executor. The sequential/chunked backends
/// fold over a depth-sorted node order; the sharded backend runs the same
/// level-synchronous schedule explicitly — level buckets instead of a sort,
/// one batch queue per destination shard per level, drained in shard order —
/// which is both the delivery structure of [`DeliveryBackend::Sharded`] and
/// cheaper on deep forests (`O(n + depth)` bookkeeping instead of
/// `O(n log n)` per call). With more than one effective worker thread, levels
/// with enough queued senders (see `FAN_OUT_MIN_QUEUED`) drain their
/// destination-shard queues **concurrently** on the executor's pool: every
/// queue only touches parents inside its own shard's contiguous node range,
/// so the folds are disjoint, and per-shard message charges are batched and
/// merged in shard order. Children of one parent always fold in ascending
/// node order, so outcomes and metrics are byte-identical across backends
/// and thread counts.
///
/// # Errors
///
/// [`EngineError::BudgetExceeded`] if the realized message count exceeds `budget`.
///
/// # Panics
///
/// Panics if `values.len() != g.n()` (one value per node).
pub fn convergecast_with<P: Wire + Send>(
    g: &Graph,
    forest: &Forest,
    values: Vec<P>,
    combine: impl Fn(P, P) -> P + Sync,
    budget: Option<u64>,
    cfg: &ExecutorConfig,
) -> Result<ConvergecastOutcome<P>, EngineError> {
    assert_eq!(values.len(), g.n(), "one value per node");
    let mut acc: Vec<Option<P>> = values.into_iter().map(Some).collect();

    let mut metrics = Metrics::new(g.m());
    let mut max_words = 0usize;
    let mut max_sender_depth = 0u32;
    let mut note_sender = |v: NodeId, sent: &P| {
        max_words = max_words.max(sent.words());
        max_sender_depth = max_sender_depth.max(forest.depth_of(v));
    };
    match cfg.resolved_backend() {
        DeliveryBackend::Sharded { shards } => {
            // Level-synchronous over depth buckets: all children of one parent
            // share a level (parent at depth d ⇒ children at d+1), so filling
            // the per-destination-shard queues in sender order and draining
            // them at the level barrier, shards in order, folds each parent's
            // children in ascending node order — the sequential fold order.
            let plan = ShardPlan::new(g.n(), shards);
            let levels = level_order(g, forest);
            let threads = cfg.effective_threads();
            let mut queues: Vec<Vec<(NodeId, EdgeId, P)>> = vec![Vec::new(); plan.shards()];
            for level in (1..levels.levels()).rev() {
                for &v in levels.level(level) {
                    if let (Some(p), Some(e)) = (forest.parent(v), forest.parent_edge(v)) {
                        let sent = acc[v.index()].take().expect("each node sends once");
                        note_sender(v, &sent);
                        queues[plan.shard_of(p)].push((p, e, sent));
                    }
                }
                let queued: usize = queues.iter().map(Vec::len).sum();
                if threads > 1 && plan.shards() > 1 && queued >= FAN_OUT_MIN_QUEUED {
                    drain_level_parallel(
                        &plan,
                        threads,
                        &mut queues,
                        &mut acc,
                        &combine,
                        &mut metrics,
                    );
                } else {
                    for q in &mut queues {
                        for (p, e, sent) in q.drain(..) {
                            metrics.add_messages(e, sent.words() as u64);
                            let own = acc[p.index()].take().expect("parent not yet sent");
                            acc[p.index()] = Some(combine(own, sent));
                        }
                    }
                }
            }
        }
        _ => {
            // Deepest nodes first; the sort is stable, so same-depth nodes (in
            // particular all children of one parent) stay in ascending node order.
            let mut order: Vec<NodeId> = g.nodes().collect();
            order.sort_by_key(|v| std::cmp::Reverse(forest.depth_of(*v)));
            for v in order {
                if let (Some(p), Some(e)) = (forest.parent(v), forest.parent_edge(v)) {
                    let sent = acc[v.index()].take().expect("each node sends once");
                    note_sender(v, &sent);
                    metrics.add_messages(e, sent.words() as u64);
                    let own = acc[p.index()].take().expect("parent not yet sent");
                    acc[p.index()] = Some(combine(own, sent));
                }
            }
        }
    }
    metrics.rounds = u64::from(max_sender_depth) * max_words as u64;
    ensure_budget("convergecast", metrics.messages, budget)?;
    let at_root = forest
        .roots()
        .iter()
        .map(|r| acc[r.index()].take().expect("roots never send"))
        .collect();
    Ok(ConvergecastOutcome { at_root, metrics })
}

/// Minimum queued entries in one level before [`drain_level_parallel`] fans
/// out. A pool scope + per-shard spawn costs microseconds; folding one entry
/// costs nanoseconds — on deep forests with near-empty levels (the
/// `mst/path-*` workloads: thousands of 1-node levels) fan-out would be pure
/// dispatch overhead, so those levels stay on the caller-thread drain. Wide
/// shallow forests (the fan-out's target) put hundreds of senders in one
/// level and clear the threshold immediately.
const FAN_OUT_MIN_QUEUED: usize = 128;

/// Drains one level's destination-shard queues concurrently on the executor
/// pool (the thread fan-out of the sharded convergecast schedule): shard `d`'s
/// queue only folds into parents inside `plan.range(d)`, so splitting `acc` at
/// the shard boundaries gives every task a disjoint mutable window. Message
/// charges are collected per shard and merged in fixed shard order afterwards —
/// in-shard charge order equals the inline drain's order and `u64` addition
/// commutes across shards, so `metrics` (totals *and* the per-edge congestion
/// vector) is byte-identical to the single-threaded drain.
fn drain_level_parallel<P: Wire + Send>(
    plan: &ShardPlan,
    threads: usize,
    queues: &mut [Vec<(NodeId, EdgeId, P)>],
    acc: &mut [Option<P>],
    combine: &(impl Fn(P, P) -> P + Sync),
    metrics: &mut Metrics,
) {
    let mut charges: Vec<Option<Vec<(EdgeId, u64)>>> = (0..plan.shards()).map(|_| None).collect();
    crate::exec::pool_for(threads).scope(|s| {
        let mut rest_acc = acc;
        let mut rest_q = &mut *queues;
        let mut rest_c = charges.as_mut_slice();
        for d in 0..plan.shards() {
            let range = plan.range(d);
            let (mine, acc_tail) = rest_acc.split_at_mut(range.len());
            rest_acc = acc_tail;
            let (q, q_tail) = rest_q.split_first_mut().expect("one queue per shard");
            rest_q = q_tail;
            let (slot, c_tail) = rest_c.split_first_mut().expect("one charge slot per shard");
            rest_c = c_tail;
            let start = range.start;
            s.spawn(move |_| {
                let mut charged = Vec::with_capacity(q.len());
                for (p, e, sent) in q.drain(..) {
                    charged.push((e, sent.words() as u64));
                    let cell = &mut mine[p.index() - start];
                    let own = cell.take().expect("parent not yet sent");
                    *cell = Some(combine(own, sent));
                }
                *slot = Some(charged);
            });
        }
    });
    for charged in charges {
        metrics.add_messages_batch(charged.expect("every shard drains"));
    }
}

/// Nodes bucketed by forest depth in CSR form: one flat node array plus
/// per-level offsets, built by a stable counting sort (`O(n + depth)`, two
/// allocations total — the sharded backends' substitute for depth sorting).
/// Within each level nodes are in ascending node order, exactly like the
/// nested-`Vec` bucketing this replaces.
struct LevelOrder {
    order: Vec<NodeId>,
    offsets: Vec<usize>,
}

impl LevelOrder {
    /// Number of levels (`depth + 1`).
    fn levels(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The nodes at depth `l`, ascending.
    fn level(&self, l: usize) -> &[NodeId] {
        &self.order[self.offsets[l]..self.offsets[l + 1]]
    }
}

fn level_order(g: &Graph, forest: &Forest) -> LevelOrder {
    let levels = forest.depth() as usize + 1;
    let mut offsets = vec![0usize; levels + 1];
    for v in g.nodes() {
        offsets[forest.depth_of(v) as usize + 1] += 1;
    }
    for l in 0..levels {
        offsets[l + 1] += offsets[l];
    }
    let mut cursors = offsets[..levels].to_vec();
    let mut order = vec![NodeId::new(0); g.n()];
    for v in g.nodes() {
        let d = forest.depth_of(v) as usize;
        order[cursors[d]] = v;
        cursors[d] += 1;
    }
    LevelOrder { order, offsets }
}

/// Result of a [`broadcast`] run.
#[derive(Clone, Debug)]
pub struct BroadcastOutcome<P> {
    /// The payload received at each node (`None` outside broadcasting trees).
    pub at_node: Vec<Option<P>>,
    /// Realized cost of the operation.
    pub metrics: Metrics,
}

/// Floods one payload per root down that root's entire tree.
///
/// Each tree edge of a broadcasting tree carries the payload exactly once; the
/// level-synchronous schedule costs `depth · w` rounds for the deepest broadcasting
/// tree, `w` being the largest payload. Trees whose root has no payload are silent.
///
/// Pass `budget = Some(limit)` to fail instead of overspending.
///
/// # Errors
///
/// [`EngineError::InvalidForest`] if a payload's source node is not a root;
/// [`EngineError::BudgetExceeded`] if the realized message count exceeds `budget`.
pub fn broadcast<P: Wire>(
    g: &Graph,
    forest: &Forest,
    payloads: Vec<(NodeId, P)>,
    budget: Option<u64>,
) -> Result<BroadcastOutcome<P>, EngineError> {
    broadcast_with(g, forest, payloads, budget, &ExecutorConfig::default())
}

/// [`broadcast`] with an explicit executor. The sequential/chunked backends
/// flood over a depth-sorted node order; the sharded backend walks the same
/// level-synchronous schedule over depth buckets (`O(n + depth)` instead of a
/// sort) — per-node writes are independent and accounting commutes, so
/// outcomes and metrics are byte-identical across backends.
///
/// # Errors
///
/// [`EngineError::InvalidForest`] if a payload's source node is not a root;
/// [`EngineError::BudgetExceeded`] if the realized message count exceeds `budget`.
pub fn broadcast_with<P: Wire>(
    g: &Graph,
    forest: &Forest,
    payloads: Vec<(NodeId, P)>,
    budget: Option<u64>,
    cfg: &ExecutorConfig,
) -> Result<BroadcastOutcome<P>, EngineError> {
    let mut at_root: Vec<Option<P>> = vec![None; g.n()];
    for (r, p) in payloads {
        if forest.parent(r).is_some() {
            return Err(EngineError::InvalidForest {
                reason: format!("broadcast source {r:?} is not a root"),
            });
        }
        at_root[r.index()] = Some(p);
    }
    let mut metrics = Metrics::new(g.m());
    let mut at_node: Vec<Option<P>> = vec![None; g.n()];
    let mut max_words = 0usize;
    let mut max_depth = 0u32;
    // Nodes in ascending depth order: each node's payload (if its root broadcasts) is
    // its root's, and its parent edge carries it once. The sharded backend
    // iterates the level buckets directly; the others sort (stably, so both
    // orders are level-by-level in ascending node order — identical).
    let mut flood = |v: NodeId| {
        let Some(p) = at_root[forest.root_of(v).index()].as_ref() else {
            return;
        };
        let p = p.clone();
        if let Some(e) = forest.parent_edge(v) {
            let words = p.words();
            metrics.add_messages(e, words as u64);
            max_words = max_words.max(words);
            max_depth = max_depth.max(forest.depth_of(v));
        }
        at_node[v.index()] = Some(p);
    };
    if let DeliveryBackend::Sharded { .. } = cfg.resolved_backend() {
        let levels = level_order(g, forest);
        for l in 0..levels.levels() {
            for &v in levels.level(l) {
                flood(v);
            }
        }
    } else {
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_by_key(|v| forest.depth_of(*v));
        for v in order {
            flood(v);
        }
    }
    metrics.rounds = u64::from(max_depth) * max_words as u64;
    ensure_budget("broadcast", metrics.messages, budget)?;
    Ok(BroadcastOutcome { at_node, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    /// A path rooted at node 0.
    fn path_forest(n: usize) -> (Graph, Forest) {
        let g = generators::path(n);
        let parent: Vec<Option<NodeId>> = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some(NodeId::new(i - 1))
                }
            })
            .collect();
        let f = Forest::from_parents(&g, parent).expect("valid parent pointers");
        (g, f)
    }

    #[test]
    fn forest_structure() {
        let (_, f) = path_forest(4);
        assert_eq!(f.roots(), &[NodeId::new(0)]);
        assert_eq!(f.depth(), 3);
        assert_eq!(f.root_of(NodeId::new(3)), NodeId::new(0));
        assert_eq!(f.depth_of(NodeId::new(2)), 2);
        assert_eq!(f.tree_edges().len(), 3);
        let groups = f.members_by_root();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 4);
    }

    #[test]
    fn invalid_parent_rejected() {
        let g = generators::path(3);
        let parent = vec![None, None, Some(NodeId::new(0))]; // 2->0 is not an edge
        assert!(Forest::from_parents(&g, parent).is_err());
    }

    #[test]
    fn cycle_rejected() {
        let g = generators::cycle(3);
        let parent = vec![
            Some(NodeId::new(1)),
            Some(NodeId::new(2)),
            Some(NodeId::new(0)),
        ];
        let err = Forest::from_parents(&g, parent).unwrap_err();
        assert!(matches!(err, EngineError::InvalidForest { .. }));
    }

    #[test]
    fn upcast_delivers_all_items() {
        let (g, f) = path_forest(5);
        let items: Vec<(NodeId, u64)> = (0..5).map(|i| (NodeId::new(i), i as u64 * 10)).collect();
        let out = upcast(&g, &f, items).expect("upcast over a valid forest");
        assert_eq!(out.at_root.len(), 1);
        let got: Vec<u64> = out.at_root[0].iter().map(|d| d.payload).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 10, 20, 30, 40]);
        // Messages = sum of depths = 0+1+2+3+4 = 10.
        assert_eq!(out.metrics.messages, 10);
        // Pipelined rounds: the deepest item needs 4 hops but shares edges; Lemma 1.5
        // bound: O(I_n) with I_n = 5 words here; realized must be <= 10.
        assert!(out.metrics.rounds >= 4 && out.metrics.rounds <= 10);
    }

    #[test]
    fn upcast_lemma_1_5_shape_on_star() {
        // Star rooted at the hub, depth 1: rounds ~ I_n only if edges are disjoint —
        // they are (one edge per leaf), so rounds = max item words, messages = I_n.
        let g = generators::star(6);
        let parent: Vec<Option<NodeId>> = (0..6)
            .map(|i| if i == 0 { None } else { Some(NodeId::new(0)) })
            .collect();
        let f = Forest::from_parents(&g, parent).expect("valid parent pointers");
        let items: Vec<(NodeId, Vec<u64>)> =
            (1..6).map(|i| (NodeId::new(i), vec![7u64; 3])).collect();
        let out = upcast(&g, &f, items).expect("upcast over a valid forest");
        assert_eq!(out.metrics.messages, 15);
        assert_eq!(out.metrics.rounds, 3); // 3 words pipelined on disjoint edges
        assert_eq!(out.at_root[0].len(), 5);
    }

    #[test]
    fn downcast_delivers_to_destinations() {
        let (g, f) = path_forest(5);
        // Root sends one item to each node.
        let items: Vec<(NodeId, u64)> = (1..5).map(|i| (NodeId::new(i), i as u64)).collect();
        let out = downcast(&g, &f, items).expect("downcast over a valid forest");
        for i in 1..5 {
            assert_eq!(out.at_node[i], vec![i as u64]);
        }
        // Lemma 1.6: messages <= d * |M| = 4*4; realized = sum of depths = 1+2+3+4.
        assert_eq!(out.metrics.messages, 10);
        // Rounds <= |M| + d.
        assert!(out.metrics.rounds <= 4 + 4);
    }

    #[test]
    fn downcast_to_root_is_free() {
        let (g, f) = path_forest(3);
        let out = downcast(&g, &f, vec![(NodeId::new(0), 42u64)]).expect("local downcast");
        assert_eq!(out.at_node[0], vec![42]);
        assert_eq!(out.metrics.messages, 0);
        assert_eq!(out.metrics.rounds, 0);
    }

    #[test]
    fn multi_tree_forest_parallelism() {
        // Two disjoint paths upcast concurrently; rounds = max, not sum.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let parent = vec![
            None,
            Some(NodeId::new(0)),
            Some(NodeId::new(1)),
            None,
            Some(NodeId::new(3)),
            Some(NodeId::new(4)),
        ];
        let f = Forest::from_parents(&g, parent).expect("valid parent pointers");
        let items = vec![(NodeId::new(2), 1u64), (NodeId::new(5), 2u64)];
        let out = upcast(&g, &f, items).expect("upcast over a valid forest");
        assert_eq!(out.metrics.rounds, 2);
        assert_eq!(out.metrics.messages, 4);
        assert_eq!(out.at_root[0][0].payload, 1);
        assert_eq!(out.at_root[1][0].payload, 2);
    }

    #[test]
    fn convergecast_sums_subtree() {
        let (g, f) = path_forest(5);
        let out = convergecast(&g, &f, vec![1u64; 5], |a, b| a + b, None)
            .expect("unbudgeted convergecast");
        assert_eq!(out.at_root, vec![5]);
        // One word per tree edge, depth rounds.
        assert_eq!(out.metrics.messages, 4);
        assert_eq!(out.metrics.rounds, 4);
    }

    #[test]
    fn convergecast_fold_order_is_child_id_ascending() {
        // Star rooted at 0: fold must visit children 1, 2, 3, 4, 5 in order.
        let g = generators::star(6);
        let parent: Vec<Option<NodeId>> =
            (0..6).map(|i| (i != 0).then_some(NodeId::new(0))).collect();
        let f = Forest::from_parents(&g, parent).expect("valid parent pointers");
        let values: Vec<Vec<u64>> = (0..6).map(|i| vec![i as u64]).collect();
        let out = convergecast(
            &g,
            &f,
            values,
            |mut a, b| {
                a.extend(b);
                a
            },
            None,
        )
        .expect("vector-append convergecast");
        assert_eq!(out.at_root[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(out.metrics.rounds, 1); // depth 1, 1-word payloads
        assert_eq!(out.metrics.messages, 5);
    }

    #[test]
    fn convergecast_budget_enforced() {
        let (g, f) = path_forest(5);
        let err = convergecast(&g, &f, vec![1u64; 5], |a, b| a + b, Some(3)).unwrap_err();
        assert!(matches!(
            err,
            EngineError::BudgetExceeded {
                op: "convergecast",
                used: 4,
                budget: 3
            }
        ));
    }

    #[test]
    fn sharded_convergecast_parallel_drain_matches_inline() {
        // Four wide trees, one rooted in each quarter of the node range, so a
        // 4-shard plan puts every root in a different shard: level 1 queues
        // 4 × 108 = 432 entries ≥ FAN_OUT_MIN_QUEUED across four *non-empty*
        // destination-shard queues (the concurrent split_at_mut windows all
        // work at once), and the one-node tails under each hub add a second,
        // sub-threshold level that takes the inline path — both drains and
        // the level scheduling are exercised in one run.
        let n = 440;
        let hub = |i: usize| (i / 110) * 110;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        for (i, slot) in parent.iter_mut().enumerate() {
            match i % 110 {
                0 => {}
                109 => {
                    edges.push((i - 1, i));
                    *slot = Some(NodeId::new(i - 1));
                }
                _ => {
                    edges.push((hub(i), i));
                    *slot = Some(NodeId::new(hub(i)));
                }
            }
        }
        let g = Graph::from_edges(n, &edges);
        let f = Forest::from_parents(&g, parent).expect("valid parent pointers");
        assert_eq!(f.roots().len(), 4);
        assert_eq!(f.depth(), 2);
        let values: Vec<Vec<u64>> = (0..n).map(|i| vec![i as u64]).collect();
        let combine = |mut a: Vec<u64>, b: Vec<u64>| {
            a.extend(b);
            a
        };
        let base = convergecast_with(
            &g,
            &f,
            values.clone(),
            combine,
            None,
            &ExecutorConfig::sequential(),
        )
        .expect("sequential convergecast");
        for shards in [2usize, 4, 8] {
            for threads in [1usize, 2, 4] {
                let cfg = ExecutorConfig::with_threads(threads)
                    .with_backend(DeliveryBackend::Sharded { shards });
                let out = convergecast_with(&g, &f, values.clone(), combine, None, &cfg)
                    .expect("sharded convergecast");
                assert_eq!(
                    base.at_root, out.at_root,
                    "{shards} shards / {threads} threads"
                );
                assert_eq!(
                    base.metrics, out.metrics,
                    "{shards} shards / {threads} threads"
                );
            }
        }
    }

    #[test]
    fn broadcast_floods_whole_tree() {
        let (g, f) = path_forest(4);
        let out =
            broadcast(&g, &f, vec![(NodeId::new(0), 7u64)], None).expect("unbudgeted broadcast");
        assert!(out.at_node.iter().all(|p| *p == Some(7)));
        assert_eq!(out.metrics.messages, 3);
        assert_eq!(out.metrics.rounds, 3);
    }

    #[test]
    fn broadcast_silent_trees_cost_nothing() {
        // Two trees; only the second broadcasts.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let parent = vec![None, Some(NodeId::new(0)), None, Some(NodeId::new(2))];
        let f = Forest::from_parents(&g, parent).expect("valid parent pointers");
        let out =
            broadcast(&g, &f, vec![(NodeId::new(2), 9u64)], None).expect("unbudgeted broadcast");
        assert_eq!(out.at_node, vec![None, None, Some(9), Some(9)]);
        assert_eq!(out.metrics.messages, 1);
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn broadcast_rejects_non_root_source() {
        let (g, f) = path_forest(3);
        let err = broadcast(&g, &f, vec![(NodeId::new(1), 1u64)], None).unwrap_err();
        assert!(matches!(err, EngineError::InvalidForest { .. }));
    }

    #[test]
    fn broadcast_budget_enforced() {
        let (g, f) = path_forest(4);
        let err = broadcast(&g, &f, vec![(NodeId::new(0), 7u64)], Some(2)).unwrap_err();
        assert!(matches!(err, EngineError::BudgetExceeded { .. }));
    }

    #[test]
    fn budgeted_upcast_and_downcast() {
        let (g, f) = path_forest(5);
        let items: Vec<(NodeId, u64)> = (0..5).map(|i| (NodeId::new(i), i as u64)).collect();
        // Realized upcast cost is 10 (sum of depths) — a budget of 10 passes, 9 fails.
        assert!(upcast_budgeted(&g, &f, items.clone(), 10).is_ok());
        let err = upcast_budgeted(&g, &f, items, 9).unwrap_err();
        assert!(matches!(
            err,
            EngineError::BudgetExceeded { op: "upcast", .. }
        ));
        let down: Vec<(NodeId, u64)> = (1..5).map(|i| (NodeId::new(i), i as u64)).collect();
        assert!(downcast_budgeted(&g, &f, down.clone(), 10).is_ok());
        assert!(downcast_budgeted(&g, &f, down, 9).is_err());
    }

    use congest_graph::Graph;
}
