//! Deterministic chunked-parallel execution of per-node phases.
//!
//! The CONGEST/BCONGEST runners step every node once per round, and the
//! expensive parts of a round — the pure [`sends`](crate::CongestAlgorithm::sends)
//! / [`broadcast`](crate::BcongestAlgorithm::broadcast) scans and the per-node
//! [`receive`](crate::BcongestAlgorithm::receive) transitions — are
//! embarrassingly parallel: node `i`'s contribution depends only on node `i`'s
//! state. This module shards the node range into **contiguous chunks**, runs
//! the chunks on a cached thread pool (the vendored `rayon` shim), and merges
//! per-chunk results **in fixed chunk order**, so every quantity the engine
//! reports — outputs, rounds, message counts, per-edge congestion — is
//! byte-identical to the sequential path at any thread count. The
//! `tests/parallel_determinism.rs` suite enforces this.
//!
//! [`ExecutorConfig::sequential`] (`threads = 1`, the default) bypasses the
//! pool entirely: the chunk helpers degenerate to a single inline call, so the
//! sequential path is the `threads = 1` special case of the parallel one, not
//! a separate code path.

use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide default for [`ExecutorConfig::default`]: `1` (sequential)
/// unless overridden by [`set_default_threads`].
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Overrides the thread count [`ExecutorConfig::default`] hands out (`0` means
/// one thread per hardware thread). Intended for binary entry points — e.g.
/// the experiments harness's `--threads` flag — so every run constructed with
/// `..Default::default()` inherits the setting. Determinism is unaffected:
/// outputs and metrics are identical at every thread count.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The current process-wide default thread count (see [`set_default_threads`]).
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// How a runner's **delivery phase** moves messages from senders to inboxes.
///
/// All three backends produce byte-identical outputs and [`crate::Metrics`] —
/// rounds, messages, broadcasts, and the full per-edge congestion vector — for
/// every workload; the root `tests/backend_conformance.rs` suite pins this
/// differentially. The backend is therefore a wall-clock/layout knob only,
/// exactly like [`ExecutorConfig::threads`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryBackend {
    /// Inline resolve-and-push: each sender's messages are charged and pushed
    /// straight into the receivers' inboxes, in sender order. The reference
    /// path every other backend is pinned against.
    Sequential,
    /// Chunk-parallel: senders are sharded into contiguous chunks, per-chunk
    /// outboxes expand concurrently, and outboxes merge in chunk order. With
    /// one effective thread this degenerates to [`DeliveryBackend::Sequential`].
    Chunked,
    /// Sharded mailboxes: nodes are partitioned into `shards` contiguous
    /// shards, each shard owns its nodes' inboxes and drains intra-shard
    /// messages locally, and cross-shard traffic accumulates into
    /// per-(src-shard, dst-shard) batch queues exchanged at the round barrier
    /// and merged in fixed (shard, node, edge) order. `shards = 0` or `1`
    /// degenerates to a single shard (still exercising the batch plumbing).
    Sharded {
        /// Number of node shards (clamped to `[1, n]`).
        shards: usize,
    },
    /// Cost-model auto-selection: the runners resolve this to one of the
    /// three concrete backends **per round**, from the round's measured
    /// message volume via [`AutoCostModel`] (with hysteresis, so consecutive
    /// rounds don't thrash between pool-dispatching backends). The chosen
    /// backend is recorded in [`crate::Metrics::backend_decisions`]; the
    /// decision is a pure function of `(volume, n, previous decision)` — never
    /// of the thread count — so the decision log is byte-identical across
    /// repeats and thread counts, and outputs/metrics stay byte-identical to
    /// every manual backend (each concrete backend is conformant).
    ///
    /// Outside the runners' round loops (treeops, direct `deliver_phase`
    /// calls) no per-round volume exists; there [`ExecutorConfig::resolved_backend`]
    /// falls back to the [`DeliveryBackend::Chunked`] rule (sequential at one
    /// effective thread, chunk-parallel otherwise).
    Auto,
}

impl Default for DeliveryBackend {
    /// [`DeliveryBackend::Chunked`]: sequential inline delivery at one thread,
    /// chunk-parallel delivery otherwise — the pre-backend-enum behaviour.
    fn default() -> Self {
        DeliveryBackend::Chunked
    }
}

/// How a runner's round buffers represent in-flight messages.
///
/// Like [`DeliveryBackend`], the plane is a layout knob only: outputs and
/// [`crate::Metrics`] are byte-identical across planes for every workload and
/// every backend — the root `tests/plane_conformance.rs` suite pins this
/// differentially over the whole registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MessagePlane {
    /// The legacy representation: each in-flight message is a typed value
    /// pushed into a per-node `Vec` inbox. Allocates per message on the hot
    /// path; works for any [`crate::Wire`] payload including variable-width
    /// ones.
    #[default]
    Boxed,
    /// The flat struct-of-arrays plane ([`crate::plane`]): messages are packed
    /// into per-round `u32` arenas via [`crate::WireEncode`] and scattered to
    /// receivers by a stable counting sort. Arenas are reused across rounds,
    /// so steady-state rounds are allocation-free. Requires fixed-width
    /// ([`crate::WireDecode`]) payloads, which every runner message type is.
    Flat,
}

/// How a runner executes its per-node phases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads for the per-node phases. `1` = sequential (no pool);
    /// `0` = one per available hardware thread; `k > 1` = exactly `k`.
    pub threads: usize,
    /// How the delivery phase moves messages (outputs/metrics identical for
    /// every backend; see [`DeliveryBackend`]).
    pub backend: DeliveryBackend,
    /// How round buffers represent in-flight messages (outputs/metrics
    /// identical for either plane; see [`MessagePlane`]).
    pub message_plane: MessagePlane,
}

impl Default for ExecutorConfig {
    /// The process-wide default (sequential unless [`set_default_threads`]
    /// was called), with the [`DeliveryBackend::Chunked`] delivery backend
    /// and the [`MessagePlane::Boxed`] message plane.
    fn default() -> Self {
        Self {
            threads: default_threads(),
            backend: DeliveryBackend::Chunked,
            message_plane: MessagePlane::Boxed,
        }
    }
}

/// Fluent builder for [`ExecutorConfig`] —
/// `ExecutorConfig::builder().threads(t).backend(b).plane(p).build()`.
///
/// Starts from [`ExecutorConfig::default`] (the process-wide default thread
/// count, chunked delivery, boxed plane); every setter overrides one knob.
/// The shorthand constructors ([`ExecutorConfig::sequential`],
/// [`ExecutorConfig::with_threads`], [`ExecutorConfig::sharded`]) and the
/// `with_*` combinators remain as thin equivalents — existing call sites
/// compile unchanged.
#[derive(Clone, Debug)]
pub struct ExecutorConfigBuilder {
    cfg: ExecutorConfig,
}

impl ExecutorConfigBuilder {
    /// Sets the worker thread count (`1` = sequential, `0` = one per
    /// hardware thread).
    #[must_use]
    pub const fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Sets the delivery backend.
    #[must_use]
    pub const fn backend(mut self, backend: DeliveryBackend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Sets the message plane.
    #[must_use]
    pub const fn plane(mut self, plane: MessagePlane) -> Self {
        self.cfg.message_plane = plane;
        self
    }

    /// Finalizes the configuration.
    #[must_use]
    pub fn build(self) -> ExecutorConfig {
        self.cfg
    }
}

impl ExecutorConfig {
    /// Starts a fluent [`ExecutorConfigBuilder`] from the default
    /// configuration.
    pub fn builder() -> ExecutorConfigBuilder {
        ExecutorConfigBuilder {
            cfg: ExecutorConfig::default(),
        }
    }

    /// The sequential executor (`threads = 1`, inline delivery).
    pub const fn sequential() -> Self {
        Self {
            threads: 1,
            backend: DeliveryBackend::Sequential,
            message_plane: MessagePlane::Boxed,
        }
    }

    /// An executor with exactly `threads` workers (`0` = hardware threads) and
    /// the default chunk-parallel delivery backend.
    pub const fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            backend: DeliveryBackend::Chunked,
            message_plane: MessagePlane::Boxed,
        }
    }

    /// An executor with the sharded delivery backend: `shards` node shards and
    /// exactly as many worker threads (`sharded(0)` means hardware-many
    /// workers over a single shard). Build the config by hand to pick a
    /// different worker count — e.g. `threads: 1` drives the shard layout
    /// inline on the caller thread.
    pub const fn sharded(shards: usize) -> Self {
        Self {
            threads: shards,
            backend: DeliveryBackend::Sharded { shards },
            message_plane: MessagePlane::Boxed,
        }
    }

    /// An executor with the cost-model [`DeliveryBackend::Auto`] backend and
    /// exactly `threads` workers (`0` = hardware threads). The runners resolve
    /// the concrete backend per round; see [`AutoCostModel`].
    pub const fn auto(threads: usize) -> Self {
        Self {
            threads,
            backend: DeliveryBackend::Auto,
            message_plane: MessagePlane::Boxed,
        }
    }

    /// Replaces the delivery backend, keeping the thread count.
    #[must_use]
    pub const fn with_backend(mut self, backend: DeliveryBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the message plane, keeping everything else.
    #[must_use]
    pub const fn with_plane(mut self, plane: MessagePlane) -> Self {
        self.message_plane = plane;
        self
    }

    /// The resolved worker count (`0` resolved to the hardware thread count,
    /// queried once per process — the runners resolve the backend every
    /// round, and `available_parallelism` is a syscall).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            static HARDWARE: OnceLock<usize> = OnceLock::new();
            *HARDWARE.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
        } else {
            self.threads
        }
    }

    /// Whether the chunk helpers will fan out to a pool.
    pub fn is_parallel(&self) -> bool {
        self.effective_threads() > 1
    }

    /// The delivery backend that will actually run: [`DeliveryBackend::Chunked`]
    /// collapses to [`DeliveryBackend::Sequential`] at one effective thread
    /// (chunking with one chunk is the sequential path), and sharded shard
    /// counts are clamped to at least 1.
    pub fn resolved_backend(&self) -> DeliveryBackend {
        match self.backend {
            DeliveryBackend::Sequential => DeliveryBackend::Sequential,
            DeliveryBackend::Chunked => {
                if self.is_parallel() {
                    DeliveryBackend::Chunked
                } else {
                    DeliveryBackend::Sequential
                }
            }
            DeliveryBackend::Sharded { shards } => DeliveryBackend::Sharded {
                shards: shards.max(1),
            },
            // Volume-blind fallback for contexts without a per-round volume
            // hint (treeops, direct `deliver_phase` callers): same rule as
            // `Chunked`. The runners' round loops never hit this arm — they
            // resolve `Auto` through a `BackendChooser` before delivery.
            DeliveryBackend::Auto => {
                if self.is_parallel() {
                    DeliveryBackend::Chunked
                } else {
                    DeliveryBackend::Sequential
                }
            }
        }
    }
}

/// Calibrated volume thresholds for [`DeliveryBackend::Auto`].
///
/// The model maps a round's pre-delivery message volume (the number of
/// point-to-point messages the round will move, counted before fault masking)
/// to one of three **tiers**:
///
/// * tier 0, [`DeliveryBackend::Sequential`] — `volume ≤ sequential_max_volume`.
///   Quiet rounds: pool dispatch costs more than it saves, so deliver inline.
/// * tier 2, [`DeliveryBackend::Sharded`] — `volume ≥ sharded_min_volume` **and**
///   `volume ≥ sharded_min_density × n`. Heavy *and dense* rounds: the sharded
///   mailbox layout pays only when each node's inbox is touched several times
///   per round (`BENCH_shard.json` wins come from dense small graphs at 4–12
///   messages/node; `BENCH_scale.json` shows sharded **losing** ~30% on sparse
///   10⁶-node workloads at ~3 messages/node, so absolute volume alone must not
///   trigger this tier).
/// * tier 1, [`DeliveryBackend::Chunked`] — everything between. Chunked
///   collapses to the sequential path at one effective thread, so this tier
///   never costs more than sequential on a small host while fanning out on a
///   large one.
///
/// **Thread-independence**: the tier is a pure function of `(volume, n,
/// previous tier)` — `effective_threads()` influences execution only through
/// the conformant `Chunked → Sequential` collapse in
/// [`ExecutorConfig::resolved_backend`]. That keeps the decision log
/// byte-identical across thread counts, which the determinism suite pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AutoCostModel {
    /// Largest round volume still delivered inline (tier 0).
    pub sequential_max_volume: u64,
    /// Smallest round volume eligible for sharded mailboxes (tier 2).
    pub sharded_min_volume: u64,
    /// Minimum average messages **per node** for tier 2 — the mailbox-reuse
    /// density at which the sharded layout's extra batch copy amortizes.
    pub sharded_min_density: u64,
    /// Hysteresis divisor: once a tier is entered, the run downgrades only
    /// when the volume falls below that tier's entry threshold divided by
    /// this factor. Amortizes pool dispatch across consecutive rounds and
    /// prevents backend thrashing on sawtooth volume profiles.
    pub hysteresis: u64,
    /// Nodes per shard when tier 2 fires: `shards = (n / nodes_per_shard)`
    /// clamped to `[2, max_shards]`.
    pub nodes_per_shard: usize,
    /// Upper bound on the shard count tier 2 requests.
    pub max_shards: usize,
}

impl AutoCostModel {
    /// The calibrated defaults, fitted to the committed `BENCH_engine.json` /
    /// `BENCH_shard.json` / `BENCH_scale.json` trajectories (methodology in
    /// `docs/BENCHMARKING.md` § backend auto-selection).
    pub const fn calibrated() -> Self {
        Self {
            sequential_max_volume: 4096,
            sharded_min_volume: 1 << 16,
            sharded_min_density: 4,
            hysteresis: 2,
            nodes_per_shard: 1 << 14,
            max_shards: 8,
        }
    }

    /// The tier (0 = sequential, 1 = chunked, 2 = sharded) this volume maps to
    /// with no hysteresis applied.
    fn preferred_tier(&self, volume: u64, n: usize) -> u8 {
        if volume >= self.sharded_min_volume
            && volume >= self.sharded_min_density.saturating_mul(n as u64)
        {
            2
        } else if volume > self.sequential_max_volume {
            1
        } else {
            0
        }
    }

    /// The volume at which `tier` is entered from below (tier 0 returns 0).
    fn entry_threshold(&self, tier: u8, n: usize) -> u64 {
        match tier {
            2 => {
                let density = self.sharded_min_density.saturating_mul(n as u64);
                if density > self.sharded_min_volume {
                    density
                } else {
                    self.sharded_min_volume
                }
            }
            1 => self.sequential_max_volume + 1,
            _ => 0,
        }
    }

    /// Shard count for an `n`-node graph when tier 2 fires.
    fn shards_for(&self, n: usize) -> usize {
        (n / self.nodes_per_shard.max(1)).clamp(2, self.max_shards.max(2))
    }
}

impl Default for AutoCostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// One per-round [`DeliveryBackend::Auto`] resolution, recorded in
/// [`crate::Metrics::backend_decisions`]. `round` is the 0-based round index
/// the decision applied to (as the runners count rounds), `volume` the
/// measured pre-delivery message volume it was derived from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendDecision {
    /// 0-based round index within the run.
    pub round: u64,
    /// Pre-delivery message volume of that round.
    pub volume: u64,
    /// The concrete backend the cost model resolved to.
    pub backend: DeliveryBackend,
}

/// Per-run state for [`DeliveryBackend::Auto`]: applies [`AutoCostModel`]
/// with hysteresis. The runners create one chooser per run (only when the
/// configured backend is `Auto`) and consult it once per executed round.
#[derive(Clone, Debug)]
pub struct BackendChooser {
    model: AutoCostModel,
    n: usize,
    tier: u8,
}

impl BackendChooser {
    /// A chooser for an `n`-node run, starting on the sequential tier.
    pub fn new(model: AutoCostModel, n: usize) -> Self {
        Self { model, n, tier: 0 }
    }

    /// Resolves the backend for a round moving `volume` messages. Upgrades to
    /// a higher tier immediately; downgrades only once the volume falls below
    /// the current tier's entry threshold divided by the hysteresis factor,
    /// so consecutive mid-volume rounds keep reusing the already-dispatched
    /// parallel machinery instead of thrashing.
    pub fn choose(&mut self, volume: u64) -> DeliveryBackend {
        let preferred = self.model.preferred_tier(volume, self.n);
        if preferred > self.tier {
            self.tier = preferred;
        } else if preferred < self.tier {
            let entry = self.model.entry_threshold(self.tier, self.n);
            if volume < entry / self.model.hysteresis.max(1) {
                self.tier = preferred;
            }
        }
        match self.tier {
            0 => DeliveryBackend::Sequential,
            1 => DeliveryBackend::Chunked,
            _ => DeliveryBackend::Sharded {
                shards: self.model.shards_for(self.n),
            },
        }
    }
}

/// Contiguous chunk size for `len` items over `threads` workers: one chunk
/// per worker. `pub(crate)`: the flat plane ([`crate::plane`]) partitions its
/// staging arenas with the same boundaries so its chunk order matches the
/// boxed path's.
pub(crate) fn chunk_size_for(len: usize, threads: usize) -> usize {
    len.div_ceil(threads).max(1)
}

/// Cached pools, one per distinct thread count. Runs share pools across rounds
/// and calls, so the per-round cost is job dispatch, not thread spawning.
/// `pub(crate)`: the sharded delivery backend ([`crate::shard`]) runs its
/// per-shard tasks on the same pools.
pub(crate) fn pool_for(threads: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().expect("pool cache poisoned");
    Arc::clone(pools.entry(threads).or_insert_with(|| {
        Arc::new(
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build executor pool"),
        )
    }))
}

/// Applies `f` to contiguous chunks of `items` (passing each chunk's start
/// index) and returns the per-chunk results **in chunk order**. Sequentially
/// this is one chunk spanning the whole slice; in parallel, one chunk per
/// worker. Callers must merge chunk results with an operation for which the
/// chunk boundaries are invisible (concatenation, min, sum, …) — then the
/// merged value is identical at every thread count.
pub fn map_chunks<T, R, F>(cfg: &ExecutorConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_ranges(cfg, items.len(), |r| f(r.start, &items[r]))
}

/// [`map_chunks`] over an index range instead of a slice: applies `f` to
/// contiguous sub-ranges of `0..len` and returns per-chunk results in order.
/// Used where the per-node work has no backing slice yet (state init).
pub fn map_ranges<R, F>(cfg: &ExecutorConfig, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = cfg.effective_threads();
    if threads <= 1 || len <= 1 {
        return vec![f(0..len)];
    }
    let size = chunk_size_for(len, threads);
    let chunk_count = len.div_ceil(size);
    let mut results: Vec<Option<R>> = (0..chunk_count).map(|_| None).collect();
    pool_for(threads).scope(|s| {
        let mut rest = results.as_mut_slice();
        for ci in 0..chunk_count {
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            let f = &f;
            s.spawn(move |_| {
                let start = ci * size;
                *slot = Some(f(start..(start + size).min(len)));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk completes"))
        .collect()
}

/// Mutable two-slice variant: chunks `a` and `b` (equal length) with the same
/// boundaries, applies `f(start, a_chunk, b_chunk)` per chunk, and returns
/// per-chunk results in chunk order. This is the receive phase's shape: states
/// and inboxes, sharded together.
pub fn map_chunks_mut2<T, U, R, F>(cfg: &ExecutorConfig, a: &mut [T], b: &mut [U], f: F) -> Vec<R>
where
    T: Send,
    U: Send,
    R: Send,
    F: Fn(usize, &mut [T], &mut [U]) -> R + Sync,
{
    assert_eq!(a.len(), b.len(), "slices must shard together");
    let threads = cfg.effective_threads();
    if threads <= 1 || a.len() <= 1 {
        return vec![f(0, a, b)];
    }
    let size = chunk_size_for(a.len(), threads);
    let chunk_count = a.len().div_ceil(size);
    let mut results: Vec<Option<R>> = (0..chunk_count).map(|_| None).collect();
    pool_for(threads).scope(|s| {
        let mut rest = results.as_mut_slice();
        let mut ra = a;
        let mut rb = b;
        let mut start = 0usize;
        while !ra.is_empty() {
            let take = size.min(ra.len());
            let (ca, ta) = ra.split_at_mut(take);
            let (cb, tb) = rb.split_at_mut(take);
            ra = ta;
            rb = tb;
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            let f = &f;
            let chunk_start = start;
            s.spawn(move |_| *slot = Some(f(chunk_start, ca, cb)));
            start += take;
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk completes"))
        .collect()
}

/// Minimum of `f` over `items`, computed chunk-wise (via the shim's
/// `par_chunks`) when parallel. Identical to
/// `items.iter().filter_map(f).min()` at every thread count.
pub fn min_chunks<T, K, F>(cfg: &ExecutorConfig, items: &[T], f: F) -> Option<K>
where
    T: Sync,
    K: Ord + Send,
    F: Fn(&T) -> Option<K> + Sync,
{
    let threads = cfg.effective_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.iter().filter_map(f).min();
    }
    let size = chunk_size_for(items.len(), threads);
    let mins: Vec<Option<K>> = pool_for(threads).install(|| {
        items
            .par_chunks(size)
            .map(|chunk| chunk.iter().filter_map(&f).min())
            .collect()
    });
    mins.into_iter().flatten().min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_shorthand_constructors() {
        assert_eq!(ExecutorConfig::builder().build(), ExecutorConfig::default());
        assert_eq!(
            ExecutorConfig::builder()
                .threads(1)
                .backend(DeliveryBackend::Sequential)
                .build(),
            ExecutorConfig::sequential()
        );
        assert_eq!(
            ExecutorConfig::builder().threads(4).build(),
            ExecutorConfig::with_threads(4)
        );
        assert_eq!(
            ExecutorConfig::builder()
                .threads(4)
                .backend(DeliveryBackend::Sharded { shards: 4 })
                .build(),
            ExecutorConfig::sharded(4)
        );
        assert_eq!(
            ExecutorConfig::builder().plane(MessagePlane::Flat).build(),
            ExecutorConfig::default().with_plane(MessagePlane::Flat)
        );
    }

    fn cfgs() -> Vec<ExecutorConfig> {
        vec![
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(2),
            ExecutorConfig::with_threads(4),
            ExecutorConfig::with_threads(7),
        ]
    }

    #[test]
    fn map_chunks_concatenation_matches_sequential() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for cfg in cfgs() {
            let got: Vec<u64> = map_chunks(&cfg, &items, |start, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(off, &x)| {
                        assert_eq!(items[start + off], x, "start index is the global index");
                        u64::from(x) * 3
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            assert_eq!(got, expected, "threads = {}", cfg.threads);
        }
    }

    #[test]
    fn map_ranges_covers_exactly_once() {
        for cfg in cfgs() {
            let covered: Vec<usize> = map_ranges(&cfg, 57, |r| r.collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(covered, (0..57).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_chunks_mut2_shards_together() {
        for cfg in cfgs() {
            let mut a: Vec<u32> = (0..41).collect();
            let mut b: Vec<u32> = (0..41).rev().collect();
            let chunk_sums = map_chunks_mut2(&cfg, &mut a, &mut b, |start, ca, cb| {
                assert_eq!(ca.len(), cb.len());
                for (off, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    assert_eq!(*x as usize, start + off);
                    *x += *y;
                    *y = 0;
                }
                ca.iter().map(|&v| u64::from(v)).sum::<u64>()
            });
            assert!(a.iter().all(|&v| v == 40), "threads = {}", cfg.threads);
            assert!(b.iter().all(|&v| v == 0));
            assert_eq!(chunk_sums.iter().sum::<u64>(), 40 * 41);
        }
    }

    #[test]
    fn min_chunks_matches_sequential() {
        let items: Vec<i64> = vec![9, 4, 7, 4, 12, -3, 8, 40, 2];
        for cfg in cfgs() {
            let got = min_chunks(&cfg, &items, |&x| (x > 0).then_some(x));
            assert_eq!(got, Some(2));
            let none = min_chunks(&cfg, &items, |&x| (x > 100).then_some(x));
            assert_eq!(none, None);
        }
    }

    #[test]
    fn zero_threads_means_hardware() {
        let cfg = ExecutorConfig::with_threads(0);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn backend_resolution() {
        // Chunked at one thread collapses to the sequential path.
        assert_eq!(
            ExecutorConfig::with_threads(1).resolved_backend(),
            DeliveryBackend::Sequential
        );
        assert_eq!(
            ExecutorConfig::with_threads(4).resolved_backend(),
            DeliveryBackend::Chunked
        );
        // Sequential stays sequential even with spare workers.
        assert_eq!(
            ExecutorConfig::with_threads(4)
                .with_backend(DeliveryBackend::Sequential)
                .resolved_backend(),
            DeliveryBackend::Sequential
        );
        // Sharded shard counts clamp to at least one shard.
        assert_eq!(
            ExecutorConfig::sharded(0).resolved_backend(),
            DeliveryBackend::Sharded { shards: 1 }
        );
        assert_eq!(
            ExecutorConfig::sharded(4).resolved_backend(),
            DeliveryBackend::Sharded { shards: 4 }
        );
        // `sharded(s)` provisions one worker per shard.
        assert_eq!(ExecutorConfig::sharded(4).threads, 4);
        // Auto's volume-blind fallback follows the Chunked collapse rule.
        assert_eq!(
            ExecutorConfig::auto(1).resolved_backend(),
            DeliveryBackend::Sequential
        );
        assert_eq!(
            ExecutorConfig::auto(4).resolved_backend(),
            DeliveryBackend::Chunked
        );
        assert_eq!(ExecutorConfig::auto(4).backend, DeliveryBackend::Auto);
    }

    #[test]
    fn chooser_tiers_follow_volume_and_density() {
        let model = AutoCostModel::calibrated();
        // Dense graph: density gate satisfied at the volume threshold.
        let mut ch = BackendChooser::new(model, 1 << 12);
        assert_eq!(ch.choose(0), DeliveryBackend::Sequential);
        assert_eq!(ch.choose(4096), DeliveryBackend::Sequential);
        assert_eq!(ch.choose(4097), DeliveryBackend::Chunked);
        assert_eq!(
            ch.choose(1 << 16),
            DeliveryBackend::Sharded { shards: 2 },
            "high volume on a dense graph promotes to sharded mailboxes"
        );
        // Sparse 2^20-node graph at ~3 messages/node: volume is huge but the
        // density gate (4 per node) holds it on the chunked tier — the regime
        // where BENCH_scale.json measured sharded losing to sequential.
        let n = 1 << 20;
        let mut sparse = BackendChooser::new(model, n);
        assert_eq!(sparse.choose(3 * n as u64), DeliveryBackend::Chunked);
        assert_eq!(
            sparse.choose(4 * n as u64),
            DeliveryBackend::Sharded { shards: 8 },
            "shard count scales with n, clamped to max_shards"
        );
    }

    #[test]
    fn chooser_hysteresis_amortizes_dispatch() {
        let model = AutoCostModel::calibrated();
        let mut ch = BackendChooser::new(model, 1 << 12);
        assert_eq!(ch.choose(10_000), DeliveryBackend::Chunked);
        // A dip to just below the entry threshold stays chunked (hysteresis),
        // so alternating 10k/4k rounds don't thrash backends.
        assert_eq!(ch.choose(4_000), DeliveryBackend::Chunked);
        assert_eq!(ch.choose(10_000), DeliveryBackend::Chunked);
        // Falling below entry/hysteresis (4097 / 2) releases the tier.
        assert_eq!(ch.choose(2_000), DeliveryBackend::Sequential);
        // Same for the sharded tier: entry is 2^16, dip to 40k holds.
        assert_eq!(ch.choose(1 << 16), DeliveryBackend::Sharded { shards: 2 });
        assert_eq!(ch.choose(40_000), DeliveryBackend::Sharded { shards: 2 });
        assert_eq!(ch.choose(20_000), DeliveryBackend::Chunked);
    }

    #[test]
    fn chooser_is_thread_independent_by_construction() {
        // The chooser never sees the thread count: identical volume sequences
        // give identical decision sequences regardless of any cfg.
        let volumes = [0u64, 100, 5_000, 70_000, 70_000, 3_000, 1_000, 0];
        let run = |_threads: usize| {
            let mut ch = BackendChooser::new(AutoCostModel::calibrated(), 4096);
            volumes.iter().map(|&v| ch.choose(v)).collect::<Vec<_>>()
        };
        let base = run(1);
        for t in [2, 4, 8] {
            assert_eq!(run(t), base);
        }
    }

    #[test]
    fn plane_defaults_to_boxed() {
        assert_eq!(ExecutorConfig::default().message_plane, MessagePlane::Boxed);
        assert_eq!(
            ExecutorConfig::sequential().message_plane,
            MessagePlane::Boxed
        );
        let flat = ExecutorConfig::sharded(2).with_plane(MessagePlane::Flat);
        assert_eq!(flat.message_plane, MessagePlane::Flat);
        assert_eq!(flat.backend, DeliveryBackend::Sharded { shards: 2 });
    }

    #[test]
    fn empty_inputs_are_fine() {
        for cfg in cfgs() {
            let r: Vec<Vec<u32>> = map_chunks(&cfg, &[] as &[u32], |_, c| c.to_vec());
            assert_eq!(r.into_iter().flatten().count(), 0);
            assert_eq!(min_chunks(&cfg, &[] as &[u32], |&x| Some(x)), None);
        }
    }
}
