//! Deterministic chunked-parallel execution of per-node phases.
//!
//! The CONGEST/BCONGEST runners step every node once per round, and the
//! expensive parts of a round — the pure [`sends`](crate::CongestAlgorithm::sends)
//! / [`broadcast`](crate::BcongestAlgorithm::broadcast) scans and the per-node
//! [`receive`](crate::BcongestAlgorithm::receive) transitions — are
//! embarrassingly parallel: node `i`'s contribution depends only on node `i`'s
//! state. This module shards the node range into **contiguous chunks**, runs
//! the chunks on a cached thread pool (the vendored `rayon` shim), and merges
//! per-chunk results **in fixed chunk order**, so every quantity the engine
//! reports — outputs, rounds, message counts, per-edge congestion — is
//! byte-identical to the sequential path at any thread count. The
//! `tests/parallel_determinism.rs` suite enforces this.
//!
//! [`ExecutorConfig::sequential`] (`threads = 1`, the default) bypasses the
//! pool entirely: the chunk helpers degenerate to a single inline call, so the
//! sequential path is the `threads = 1` special case of the parallel one, not
//! a separate code path.

use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide default for [`ExecutorConfig::default`]: `1` (sequential)
/// unless overridden by [`set_default_threads`].
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Overrides the thread count [`ExecutorConfig::default`] hands out (`0` means
/// one thread per hardware thread). Intended for binary entry points — e.g.
/// the experiments harness's `--threads` flag — so every run constructed with
/// `..Default::default()` inherits the setting. Determinism is unaffected:
/// outputs and metrics are identical at every thread count.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The current process-wide default thread count (see [`set_default_threads`]).
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// How a runner executes its per-node phases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads for the per-node phases. `1` = sequential (no pool);
    /// `0` = one per available hardware thread; `k > 1` = exactly `k`.
    pub threads: usize,
}

impl Default for ExecutorConfig {
    /// The process-wide default (sequential unless [`set_default_threads`]
    /// was called).
    fn default() -> Self {
        Self {
            threads: default_threads(),
        }
    }
}

impl ExecutorConfig {
    /// The sequential executor (`threads = 1`).
    pub const fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// An executor with exactly `threads` workers (`0` = hardware threads).
    pub const fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The resolved worker count (`0` resolved to the hardware thread count).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        }
    }

    /// Whether the chunk helpers will fan out to a pool.
    pub fn is_parallel(&self) -> bool {
        self.effective_threads() > 1
    }
}

/// Contiguous chunk size for `len` items over `threads` workers: one chunk
/// per worker.
fn chunk_size_for(len: usize, threads: usize) -> usize {
    len.div_ceil(threads).max(1)
}

/// Cached pools, one per distinct thread count. Runs share pools across rounds
/// and calls, so the per-round cost is job dispatch, not thread spawning.
fn pool_for(threads: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().expect("pool cache poisoned");
    Arc::clone(pools.entry(threads).or_insert_with(|| {
        Arc::new(
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build executor pool"),
        )
    }))
}

/// Applies `f` to contiguous chunks of `items` (passing each chunk's start
/// index) and returns the per-chunk results **in chunk order**. Sequentially
/// this is one chunk spanning the whole slice; in parallel, one chunk per
/// worker. Callers must merge chunk results with an operation for which the
/// chunk boundaries are invisible (concatenation, min, sum, …) — then the
/// merged value is identical at every thread count.
pub fn map_chunks<T, R, F>(cfg: &ExecutorConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_ranges(cfg, items.len(), |r| f(r.start, &items[r]))
}

/// [`map_chunks`] over an index range instead of a slice: applies `f` to
/// contiguous sub-ranges of `0..len` and returns per-chunk results in order.
/// Used where the per-node work has no backing slice yet (state init).
pub fn map_ranges<R, F>(cfg: &ExecutorConfig, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = cfg.effective_threads();
    if threads <= 1 || len <= 1 {
        return vec![f(0..len)];
    }
    let size = chunk_size_for(len, threads);
    let chunk_count = len.div_ceil(size);
    let mut results: Vec<Option<R>> = (0..chunk_count).map(|_| None).collect();
    pool_for(threads).scope(|s| {
        let mut rest = results.as_mut_slice();
        for ci in 0..chunk_count {
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            let f = &f;
            s.spawn(move |_| {
                let start = ci * size;
                *slot = Some(f(start..(start + size).min(len)));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk completes"))
        .collect()
}

/// Mutable two-slice variant: chunks `a` and `b` (equal length) with the same
/// boundaries, applies `f(start, a_chunk, b_chunk)` per chunk, and returns
/// per-chunk results in chunk order. This is the receive phase's shape: states
/// and inboxes, sharded together.
pub fn map_chunks_mut2<T, U, R, F>(cfg: &ExecutorConfig, a: &mut [T], b: &mut [U], f: F) -> Vec<R>
where
    T: Send,
    U: Send,
    R: Send,
    F: Fn(usize, &mut [T], &mut [U]) -> R + Sync,
{
    assert_eq!(a.len(), b.len(), "slices must shard together");
    let threads = cfg.effective_threads();
    if threads <= 1 || a.len() <= 1 {
        return vec![f(0, a, b)];
    }
    let size = chunk_size_for(a.len(), threads);
    let chunk_count = a.len().div_ceil(size);
    let mut results: Vec<Option<R>> = (0..chunk_count).map(|_| None).collect();
    pool_for(threads).scope(|s| {
        let mut rest = results.as_mut_slice();
        let mut ra = a;
        let mut rb = b;
        let mut start = 0usize;
        while !ra.is_empty() {
            let take = size.min(ra.len());
            let (ca, ta) = ra.split_at_mut(take);
            let (cb, tb) = rb.split_at_mut(take);
            ra = ta;
            rb = tb;
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            let f = &f;
            let chunk_start = start;
            s.spawn(move |_| *slot = Some(f(chunk_start, ca, cb)));
            start += take;
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk completes"))
        .collect()
}

/// Minimum of `f` over `items`, computed chunk-wise (via the shim's
/// `par_chunks`) when parallel. Identical to
/// `items.iter().filter_map(f).min()` at every thread count.
pub fn min_chunks<T, K, F>(cfg: &ExecutorConfig, items: &[T], f: F) -> Option<K>
where
    T: Sync,
    K: Ord + Send,
    F: Fn(&T) -> Option<K> + Sync,
{
    let threads = cfg.effective_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.iter().filter_map(f).min();
    }
    let size = chunk_size_for(items.len(), threads);
    let mins: Vec<Option<K>> = pool_for(threads).install(|| {
        items
            .par_chunks(size)
            .map(|chunk| chunk.iter().filter_map(&f).min())
            .collect()
    });
    mins.into_iter().flatten().min()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs() -> Vec<ExecutorConfig> {
        vec![
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(2),
            ExecutorConfig::with_threads(4),
            ExecutorConfig::with_threads(7),
        ]
    }

    #[test]
    fn map_chunks_concatenation_matches_sequential() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for cfg in cfgs() {
            let got: Vec<u64> = map_chunks(&cfg, &items, |start, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(off, &x)| {
                        assert_eq!(items[start + off], x, "start index is the global index");
                        u64::from(x) * 3
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            assert_eq!(got, expected, "threads = {}", cfg.threads);
        }
    }

    #[test]
    fn map_ranges_covers_exactly_once() {
        for cfg in cfgs() {
            let covered: Vec<usize> = map_ranges(&cfg, 57, |r| r.collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(covered, (0..57).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_chunks_mut2_shards_together() {
        for cfg in cfgs() {
            let mut a: Vec<u32> = (0..41).collect();
            let mut b: Vec<u32> = (0..41).rev().collect();
            let chunk_sums = map_chunks_mut2(&cfg, &mut a, &mut b, |start, ca, cb| {
                assert_eq!(ca.len(), cb.len());
                for (off, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    assert_eq!(*x as usize, start + off);
                    *x += *y;
                    *y = 0;
                }
                ca.iter().map(|&v| u64::from(v)).sum::<u64>()
            });
            assert!(a.iter().all(|&v| v == 40), "threads = {}", cfg.threads);
            assert!(b.iter().all(|&v| v == 0));
            assert_eq!(chunk_sums.iter().sum::<u64>(), 40 * 41);
        }
    }

    #[test]
    fn min_chunks_matches_sequential() {
        let items: Vec<i64> = vec![9, 4, 7, 4, 12, -3, 8, 40, 2];
        for cfg in cfgs() {
            let got = min_chunks(&cfg, &items, |&x| (x > 0).then_some(x));
            assert_eq!(got, Some(2));
            let none = min_chunks(&cfg, &items, |&x| (x > 100).then_some(x));
            assert_eq!(none, None);
        }
    }

    #[test]
    fn zero_threads_means_hardware() {
        let cfg = ExecutorConfig::with_threads(0);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn empty_inputs_are_fine() {
        for cfg in cfgs() {
            let r: Vec<Vec<u32>> = map_chunks(&cfg, &[] as &[u32], |_, c| c.to_vec());
            assert_eq!(r.into_iter().flatten().count(), 0);
            assert_eq!(min_chunks(&cfg, &[] as &[u32], |&x| Some(x)), None);
        }
    }
}
