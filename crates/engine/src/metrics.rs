//! Round, message, broadcast and per-edge congestion accounting.

use crate::exec::BackendDecision;
use congest_graph::EdgeId;

/// Complexity measures of one (partial) distributed execution.
///
/// * `rounds` — synchronous rounds elapsed;
/// * `messages` — CONGEST messages (words) sent, summed over all edges and directions;
/// * `broadcasts` — BCONGEST broadcast operations (only meaningful for broadcast-based
///   runs; the paper's *broadcast complexity* `B`);
/// * per-edge congestion — messages per undirected edge, summed over both directions
///   (the paper's `congestion(e)`).
///
/// Metrics compose: [`Metrics::merge_sequential`] for operations that run one after the
/// other, [`Metrics::merge_parallel`] for operations on disjoint edges that run at the
/// same time (rounds take the max, messages add).
///
/// Equality (`PartialEq`) and the `Debug` rendering cover every *model-level*
/// field — rounds, messages, broadcasts, payload bytes, dropped messages, and
/// the full congestion vector — but **not** [`Metrics::backend_decisions`]:
/// the decision log is an execution-level diagnostic of
/// [`crate::DeliveryBackend::Auto`] runs, so an `Auto` run compares equal
/// (and renders identically in canonical workload outputs) to the
/// manual-backend runs it conforms to. The determinism suite compares
/// decision logs explicitly through the accessor.
#[derive(Clone)]
pub struct Metrics {
    /// Number of synchronous rounds.
    pub rounds: u64,
    /// Total messages (one word = one message).
    pub messages: u64,
    /// Total broadcast operations (BCONGEST only; 0 otherwise).
    pub broadcasts: u64,
    /// Implementation-level payload bytes moved, summed over all messages.
    ///
    /// Model-level cost stays in [`Metrics::messages`] (words); this field is
    /// the memory-envelope side of the ledger — `payload_bytes / messages` is
    /// the measured bytes-per-message a workload's envelope bounds. Charges
    /// default to 8 bytes per word ([`Metrics::add_messages`]); the runners
    /// charge the exact packed width (`4 × LANES` bytes per message) on both
    /// message planes, so the field is plane-independent and participates in
    /// conformance equality.
    pub payload_bytes: u64,
    /// Messages suppressed by fault injection (down edges / crashed
    /// endpoints): a send the expansion produced but the network dropped.
    /// Dropped messages are **not** charged to [`Metrics::messages`],
    /// [`Metrics::payload_bytes`] or the congestion vector — they never
    /// crossed an edge — but the count participates in conformance equality
    /// like every other field. Always 0 for fault-free runs.
    pub dropped_messages: u64,
    congestion: Vec<u64>,
    backend_decisions: Vec<BackendDecision>,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        // `backend_decisions` is deliberately excluded — see the type docs.
        self.rounds == other.rounds
            && self.messages == other.messages
            && self.broadcasts == other.broadcasts
            && self.payload_bytes == other.payload_bytes
            && self.dropped_messages == other.dropped_messages
            && self.congestion == other.congestion
    }
}

impl Eq for Metrics {}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `backend_decisions` is deliberately omitted — canonical workload
        // outputs embed this rendering, and they must stay byte-identical
        // between `Auto` and manual-backend runs (see the type docs).
        f.debug_struct("Metrics")
            .field("rounds", &self.rounds)
            .field("messages", &self.messages)
            .field("broadcasts", &self.broadcasts)
            .field("payload_bytes", &self.payload_bytes)
            .field("dropped_messages", &self.dropped_messages)
            .field("congestion", &self.congestion)
            .finish()
    }
}

impl Metrics {
    /// Fresh metrics for a graph with `m` edges.
    pub fn new(m: usize) -> Self {
        Self {
            rounds: 0,
            messages: 0,
            broadcasts: 0,
            payload_bytes: 0,
            dropped_messages: 0,
            congestion: vec![0; m],
            backend_decisions: Vec::new(),
        }
    }

    /// The per-round [`crate::DeliveryBackend::Auto`] decision log: one entry
    /// per executed round, in round order. Empty for manual-backend runs.
    /// Excluded from `PartialEq` (see the type docs); the decision sequence is
    /// itself deterministic — byte-identical across repeats and thread counts.
    pub fn backend_decisions(&self) -> &[BackendDecision] {
        &self.backend_decisions
    }

    /// Appends one `Auto` resolution to the decision log.
    pub(crate) fn record_backend_decision(&mut self, decision: BackendDecision) {
        self.backend_decisions.push(decision);
    }

    /// Records `words` messages crossing edge `e` (either direction), at the
    /// default 8 bytes of payload per word.
    #[inline]
    pub fn add_messages(&mut self, e: EdgeId, words: u64) {
        self.add_messages_sized(e, words, 8 * words);
    }

    /// Records `words` messages crossing edge `e` carrying exactly `bytes`
    /// payload bytes in total. The runners use this with the packed wire
    /// width (`4 × LANES` bytes per message) so both message planes charge
    /// identically.
    #[inline]
    pub fn add_messages_sized(&mut self, e: EdgeId, words: u64, bytes: u64) {
        self.messages += words;
        self.payload_bytes += bytes;
        self.congestion[e.index()] += words;
    }

    /// Records a batch of `(edge, words)` message charges — the merge step for
    /// the per-chunk outboxes the parallel executor produces. Equivalent to
    /// calling [`Metrics::add_messages`] per entry (`u64` addition commutes, so
    /// totals are identical regardless of how the batch was sharded).
    pub fn add_messages_batch<I: IntoIterator<Item = (EdgeId, u64)>>(&mut self, batch: I) {
        for (e, words) in batch {
            self.add_messages(e, words);
        }
    }

    /// Per-edge congestion, indexed by [`EdgeId`].
    pub fn congestion(&self) -> &[u64] {
        &self.congestion
    }

    /// Maximum congestion over all edges (0 for edgeless graphs).
    pub fn max_congestion(&self) -> u64 {
        self.congestion.iter().copied().max().unwrap_or(0)
    }

    /// Maximum congestion over edges selected by `mask` (e.g. cluster edges only —
    /// Lemmas 3.8/3.12/3.18 bound cluster and non-cluster edges separately).
    pub fn max_congestion_where(&self, mask: impl Fn(EdgeId) -> bool) -> u64 {
        self.congestion
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask(EdgeId::new(i)))
            .map(|(_, &c)| c)
            .max()
            .unwrap_or(0)
    }

    /// Total congestion over edges selected by `mask`.
    pub fn total_messages_where(&self, mask: impl Fn(EdgeId) -> bool) -> u64 {
        self.congestion
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask(EdgeId::new(i)))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Composes with an operation that ran *after* this one: rounds add.
    pub fn merge_sequential(&mut self, other: &Metrics) {
        assert_eq!(
            self.congestion.len(),
            other.congestion.len(),
            "graph mismatch"
        );
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.broadcasts += other.broadcasts;
        self.payload_bytes += other.payload_bytes;
        self.dropped_messages += other.dropped_messages;
        for (a, b) in self.congestion.iter_mut().zip(&other.congestion) {
            *a += b;
        }
        self.backend_decisions
            .extend_from_slice(&other.backend_decisions);
    }

    /// Composes with an operation that ran *concurrently* (on edges disjoint in time or
    /// space): rounds take the max, messages and congestion add.
    pub fn merge_parallel(&mut self, other: &Metrics) {
        assert_eq!(
            self.congestion.len(),
            other.congestion.len(),
            "graph mismatch"
        );
        self.rounds = self.rounds.max(other.rounds);
        self.messages += other.messages;
        self.broadcasts += other.broadcasts;
        self.payload_bytes += other.payload_bytes;
        self.dropped_messages += other.dropped_messages;
        for (a, b) in self.congestion.iter_mut().zip(&other.congestion) {
            *a += b;
        }
        self.backend_decisions
            .extend_from_slice(&other.backend_decisions);
    }

    /// Adds `r` rounds with no traffic (idle/padding rounds, e.g. `strict_phase_budget`).
    pub fn pad_rounds(&mut self, r: u64) {
        self.rounds += r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut m = Metrics::new(3);
        m.add_messages(EdgeId::new(0), 2);
        m.add_messages(EdgeId::new(2), 5);
        assert_eq!(m.messages, 7);
        assert_eq!(m.max_congestion(), 5);
        assert_eq!(m.congestion(), &[2, 0, 5]);
        assert_eq!(m.max_congestion_where(|e| e.index() < 2), 2);
        assert_eq!(m.total_messages_where(|e| e.index() != 2), 2);
        // Default byte charge is 8 bytes per word.
        assert_eq!(m.payload_bytes, 8 * 7);
    }

    #[test]
    fn sized_charges_decouple_bytes_from_words() {
        let mut m = Metrics::new(1);
        m.add_messages_sized(EdgeId::new(0), 3, 12);
        assert_eq!(m.messages, 3);
        assert_eq!(m.payload_bytes, 12);
        assert_eq!(m.congestion(), &[3]);
    }

    #[test]
    fn batch_equals_per_entry() {
        let entries = [
            (EdgeId::new(0), 2u64),
            (EdgeId::new(2), 5),
            (EdgeId::new(0), 1),
        ];
        let mut a = Metrics::new(3);
        a.add_messages_batch(entries);
        let mut b = Metrics::new(3);
        for (e, w) in entries {
            b.add_messages(e, w);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_composition() {
        let mut a = Metrics::new(2);
        a.rounds = 3;
        a.add_messages(EdgeId::new(0), 1);
        let mut b = Metrics::new(2);
        b.rounds = 4;
        b.add_messages(EdgeId::new(1), 2);
        a.merge_sequential(&b);
        assert_eq!(a.rounds, 7);
        assert_eq!(a.messages, 3);
        assert_eq!(a.congestion(), &[1, 2]);
    }

    #[test]
    fn parallel_composition() {
        let mut a = Metrics::new(2);
        a.rounds = 3;
        let mut b = Metrics::new(2);
        b.rounds = 5;
        b.broadcasts = 2;
        a.merge_parallel(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.broadcasts, 2);
    }

    #[test]
    fn padding() {
        let mut a = Metrics::new(0);
        a.pad_rounds(10);
        assert_eq!(a.rounds, 10);
        assert_eq!(a.messages, 0);
    }

    #[test]
    #[should_panic(expected = "graph mismatch")]
    fn mismatched_graphs_panic() {
        let mut a = Metrics::new(1);
        let b = Metrics::new(2);
        a.merge_sequential(&b);
    }
}
